package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/transport"
)

// startNetemCluster launches an n-server cluster on a fault-injecting
// network and returns both.
func startNetemCluster(t *testing.T, n int) (*cluster.Cluster, *transport.Netem) {
	t.Helper()
	netem := transport.NewNetem(transport.NewInproc(transport.Shape{}))
	cl, err := cluster.Start(cluster.Config{N: n, Network: netem})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, netem
}

// TestHungServerOpsBounded is the headline failure-detection guarantee:
// with one server hung (accepts connections, never responds), every
// Set/Get/Delete completes within 2x OpTimeout, and Get still returns
// the correct value through a degraded read.
func TestHungServerOpsBounded(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	const opTimeout = 200 * time.Millisecond
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		OpTimeout:  opTimeout,
		MaxRetries: -1, // retries disabled: the bound must hold per attempt
	})
	value := bytes.Repeat([]byte("x"), 10_000)
	if err := c.Set("bounded", value); err != nil {
		t.Fatal(err)
	}

	hung := cl.Addrs()[0]
	netem.Hang(hung)
	defer netem.Restore(hung)

	bounded := func(name string, op func() error) error {
		t.Helper()
		start := time.Now()
		err := op()
		if elapsed := time.Since(start); elapsed > 2*opTimeout {
			t.Fatalf("%s took %v with a hung server; budget is %v", name, elapsed, 2*opTimeout)
		}
		return err
	}

	// Degraded read: the hung chunk holder times out, parity covers it.
	err := bounded("Get", func() error {
		got, err := c.Get("bounded")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, value) {
			t.Fatal("degraded read returned a wrong value")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Get with one hung chunk holder must succeed via parity: %v", err)
	}

	// Set and Delete may fail (the hung holder never acknowledges) but
	// must return within the budget rather than block.
	_ = bounded("Set", func() error { return c.Set("bounded-2", value) })
	_ = bounded("Delete", func() error { return c.Delete("bounded") })
}

// TestSlowServerStillCorrect: a pathologically slow (but live) server
// below the deadline does not produce wrong answers or failures.
func TestSlowServerStillCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		OpTimeout: 2 * time.Second,
	})
	slow := cl.Addrs()[1]
	netem.Delay(slow, 20*time.Millisecond)
	defer netem.Restore(slow)

	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("slow-%d", i)
		value := bytes.Repeat([]byte{byte('a' + i)}, 4<<10)
		if err := c.Set(key, value); err != nil {
			t.Fatalf("Set under delay: %v", err)
		}
		got, err := c.Get(key)
		if err != nil || !bytes.Equal(got, value) {
			t.Fatalf("Get under delay: %v", err)
		}
	}
}

// TestFlappingServer alternates one server between hung and healthy
// while operations run with retries enabled: reads must stay correct
// and every operation must terminate.
func TestFlappingServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		OpTimeout:    150 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: 5 * time.Millisecond,
	})
	flappy := cl.Addrs()[2]

	written := map[string][]byte{}
	readAll := func(round int) {
		t.Helper()
		for k, v := range written {
			got, err := c.Get(k)
			if err != nil {
				t.Fatalf("round %d: Get %s: %v", round, k, err)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("round %d: Get %s returned a wrong value", round, k)
			}
		}
	}
	for round := 0; round < 3; round++ {
		netem.Hang(flappy)
		// During the outage: writes may fail (they must still
		// terminate — the test would hang here otherwise), reads must
		// stay correct via degraded reads.
		hungKey := fmt.Sprintf("flap-hung-%d", round)
		hungVal := bytes.Repeat([]byte{byte('a' + round)}, 2<<10)
		if err := c.Set(hungKey, hungVal); err == nil {
			written[hungKey] = hungVal
		}
		readAll(round)

		netem.Restore(flappy)
		// After the flap clears, writes must start succeeding again
		// within a short grace period (the suspect state persists until
		// a probe goes through and heals it).
		key := fmt.Sprintf("flap-%d", round)
		value := bytes.Repeat([]byte{byte('A' + round)}, 2<<10)
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := c.Set(key, value); err == nil {
				written[key] = value
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: writes never recovered after the flap cleared", round)
			}
			time.Sleep(10 * time.Millisecond)
		}
		readAll(round)
	}
}

// TestSuspectServerNotRedialedPerChunk: once a dead server trips the
// health tracker, further operations must not pay a fresh dial per
// chunk request — the suspect state fails fast and only spaced probes
// dial.
func TestSuspectServerNotRedialedPerChunk(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		MaxRetries: -1,
	})
	value := bytes.Repeat([]byte("y"), 8<<10)
	if err := c.Set("probe-key", value); err != nil {
		t.Fatal(err)
	}

	dead := cl.Addrs()[0]
	netem.Cut(dead)
	defer netem.Restore(dead)
	base := netem.DialCount(dead)

	const ops = 30
	for i := 0; i < ops; i++ {
		got, err := c.Get("probe-key")
		if err != nil {
			t.Fatalf("Get %d with one dead server: %v", i, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("Get %d returned a wrong value", i)
		}
	}

	// Without the tracker every Get would dial the dead server once
	// (30 dials). With it: threshold failures to trip, plus at most a
	// few backed-off probes.
	if dials := netem.DialCount(dead) - base; dials >= ops/2 {
		t.Fatalf("dead server dialed %d times across %d ops; health tracker not suppressing dials", dials, ops)
	}
}

// TestFailedSetDoesNotShadowPreviousValue is the torn-stripe
// regression: a Set that fails mid-write must never leave the new
// value readable. The old value may survive or the key may become
// unavailable, but a Get must not return the failed write's value.
func TestFailedSetDoesNotShadowPreviousValue(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	v1 := bytes.Repeat([]byte("old"), 4<<10)
	v2 := bytes.Repeat([]byte("new"), 4<<10)

	for i, addr := range cl.Addrs() {
		t.Run(fmt.Sprintf("cut-%d", i), func(t *testing.T) {
			// Fresh client per sub-test: health state from the previous
			// cut must not leak in.
			c := newClient(t, cl, core.Config{
				Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
				OpTimeout:  200 * time.Millisecond,
				MaxRetries: -1,
			})
			key := fmt.Sprintf("shadow-%d", i)
			if err := c.Set(key, v1); err != nil {
				t.Fatal(err)
			}
			netem.Cut(addr)
			err := c.Set(key, v2)
			netem.Restore(addr)
			if err == nil {
				t.Fatal("Set with a dead chunk holder must fail")
			}
			got, gerr := c.Get(key)
			if gerr == nil && bytes.Equal(got, v2) {
				t.Fatal("failed Set's value became readable (torn stripe shadowed the old one)")
			}
			if gerr != nil && !errors.Is(gerr, core.ErrNotFound) && !errors.Is(gerr, core.ErrUnavailable) {
				t.Fatalf("unexpected Get error class: %v", gerr)
			}
		})
	}
}

// TestHybridDeleteSurfacesECFailure is the hybrid-delete regression:
// when the erasure-coded side of a hybrid delete fails against enough
// unreachable holders that the value could survive there, Delete must
// not report success.
func TestHybridDeleteSurfacesECFailure(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceHybrid, Replicas: 3, K: 3, M: 2,
		OpTimeout:  150 * time.Millisecond,
		MaxRetries: -1,
	})
	// Large value: stored erasure-coded across all five servers.
	value := bytes.Repeat([]byte("z"), 64<<10)
	if err := c.Set("hybrid-large", value); err != nil {
		t.Fatal(err)
	}

	// Hang K servers: the EC delete cannot confirm on enough holders
	// to rule out a surviving decodable stripe.
	for _, addr := range cl.Addrs()[:3] {
		netem.Hang(addr)
	}
	defer func() {
		for _, addr := range cl.Addrs()[:3] {
			netem.Restore(addr)
		}
	}()

	if err := c.Delete("hybrid-large"); err == nil {
		t.Fatal("hybrid Delete reported success while K chunk holders were unreachable")
	}
}

// TestHybridDeleteOfReplicatedValueTolerantOfFewDownHolders: the flip
// side — a small (replicated) value deletes cleanly even when a
// minority of servers is unreachable, because fewer than K unreached
// holders cannot hide an erasure-coded form.
func TestHybridDeleteOfReplicatedValueTolerantOfFewDownHolders(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceHybrid, Replicas: 3, K: 3, M: 2,
		OpTimeout:  150 * time.Millisecond,
		MaxRetries: -1,
	})
	for i := 0; i < 8; i++ {
		if err := c.Set(fmt.Sprintf("hybrid-small-%d", i), []byte("tiny")); err != nil {
			t.Fatal(err)
		}
	}
	// One hung server: fewer than K holders unreached.
	hung := cl.Addrs()[4]
	netem.Hang(hung)
	defer netem.Restore(hung)

	deleted := 0
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("hybrid-small-%d", i)
		if err := c.Delete(key); err != nil {
			// A key whose replica set includes the hung server may
			// legitimately fail; skip it.
			continue
		}
		deleted++
		if _, err := c.Get(key); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("Get %s after successful Delete: %v, want ErrNotFound", key, err)
		}
	}
	if deleted == 0 {
		t.Fatal("no small key deleted cleanly with a single hung server")
	}
}

// TestNotFoundVsUnavailable is the get-classification regression: a
// missing key reads as ErrNotFound while the unreachable minority
// cannot hold K chunks, and as ErrUnavailable once it could.
func TestNotFoundVsUnavailable(t *testing.T) {
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		OpTimeout:  150 * time.Millisecond,
		MaxRetries: -1,
	})

	// One hung server: four locations answer not-found, one is silent.
	// A single silent holder cannot hold K=3 chunks, so the miss is
	// conclusive.
	netem.Hang(cl.Addrs()[0])
	if _, err := c.Get("never-written"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("one hung holder: got %v, want ErrNotFound", err)
	}

	// Three hung servers: only two answer. Three silent holders could
	// hold a full stripe, so absence cannot be concluded.
	netem.Hang(cl.Addrs()[1])
	netem.Hang(cl.Addrs()[2])
	defer func() {
		for _, addr := range cl.Addrs()[:3] {
			netem.Restore(addr)
		}
	}()
	if _, err := c.Get("never-written"); !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("three hung holders: got %v, want ErrUnavailable", err)
	}
}

// TestRetryRecoversAfterBlip: a read issued while the cluster is hung
// succeeds anyway if the fault clears within the retry budget.
func TestRetryRecoversAfterBlip(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	cl, netem := startNetemCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
		OpTimeout:    100 * time.Millisecond,
		MaxRetries:   5,
		RetryBackoff: 20 * time.Millisecond,
	})
	value := []byte("blip-value")
	if err := c.Set("blip", value); err != nil {
		t.Fatal(err)
	}
	// Hang three servers (too many for a degraded read), then clear
	// the fault while the first attempt is timing out.
	for _, addr := range cl.Addrs()[:3] {
		netem.Hang(addr)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		for _, addr := range cl.Addrs()[:3] {
			netem.Restore(addr)
		}
	}()
	got, err := c.Get("blip")
	if err != nil {
		t.Fatalf("Get across a transient outage: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("wrong value after retry")
	}
}
