package core_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/migrate"
)

// BenchmarkMigrationImpact quantifies what online rebalancing costs
// foreground traffic: client Gets are timed against an idle cluster
// (steady) and against one where the migration daemon continuously
// sweeps the keyspace after a ring change (migrating). Reported
// metrics: qps and p99_us per variant — EXPERIMENTS.md records the
// spread, CI tracks the trajectory as BENCH_9.json.
func BenchmarkMigrationImpact(b *testing.B) {
	const (
		nkeys     = 128
		valueSize = 4 << 10
	)
	for _, variant := range []string{"steady", "migrating"} {
		b.Run(variant, func(b *testing.B) {
			cl, err := cluster.Start(cluster.Config{N: 5})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(cl.Close)
			c, err := core.New(core.Config{
				Network: cl.Network(), Servers: cl.Addrs(),
				Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)

			value := bytes.Repeat([]byte{0x3C}, valueSize)
			keys := make([]string, nkeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("mig-bench/%03d", i)
				if err := c.Set(keys[i], value); err != nil {
					b.Fatal(err)
				}
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			if variant == "migrating" {
				old := c.View()
				if _, err := cl.AddServer("kv-joiner"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.RingAdd("kv-joiner"); err != nil {
					b.Fatal(err)
				}
				daemon, err := migrate.New(migrate.Config{Client: c, Rate: 5000})
				if err != nil {
					b.Fatal(err)
				}
				// First cycle moves the data; the measured window then runs
				// against the steady probe/scan load a long budgeted
				// rebalance exerts (chunks mid-move are unreadable at the
				// new placement, so timing reads against a half-moved
				// keyspace would measure failures, not interference).
				daemon.Enqueue(old)
				if rep := daemon.RunCycle(nil); rep.Err != nil || rep.Failed > 0 {
					b.Fatalf("priming migration cycle: %+v", rep)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						daemon.Enqueue(old)
						daemon.RunCycle(stop)
					}
				}()
			}

			latencies := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := c.Get(keys[i%nkeys]); err != nil {
					b.Fatal(err)
				}
				latencies = append(latencies, time.Since(t0))
			}
			elapsed := time.Since(start)
			b.StopTimer()
			close(stop)
			wg.Wait()

			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			p99 := latencies[len(latencies)*99/100]
			b.ReportMetric(float64(p99.Microseconds()), "p99_us")
		})
	}
}
