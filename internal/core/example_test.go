package core_test

import (
	"fmt"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
)

// The full lifecycle: an erasure-coded store that survives two server
// failures.
func ExampleClient() {
	cl, err := cluster.Start(cluster.Config{N: 5})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	client, err := core.New(core.Config{
		Network:    cl.Network(),
		Servers:    cl.Addrs(),
		Resilience: core.ResilienceErasure,
		Scheme:     core.SchemeCECD,
		K:          3,
		M:          2,
	})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	if err := client.Set("greeting", []byte("hello, resilient world")); err != nil {
		panic(err)
	}
	cl.Kill(0)
	cl.Kill(1)
	v, err := client.Get("greeting")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(v))
	// Output: hello, resilient world
}

// Non-blocking pipelining with futures (memcached_iset/iget/wait).
func ExampleClient_iSet() {
	cl, err := cluster.Start(cluster.Config{N: 5})
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	client, err := core.New(core.Config{
		Network:    cl.Network(),
		Servers:    cl.Addrs(),
		Resilience: core.ResilienceErasure,
		K:          3, M: 2,
	})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	// Issue eight writes without waiting, then wait once.
	futures := make([]*core.Future, 8)
	for i := range futures {
		futures[i] = client.ISet(fmt.Sprintf("item-%d", i), []byte("v"))
	}
	if err := core.WaitAll(futures...); err != nil {
		panic(err)
	}
	fmt.Println("all writes durable")
	// Output: all writes durable
}
