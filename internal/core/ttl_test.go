package core_test

import (
	"errors"
	"testing"
	"time"

	"ecstore/internal/core"
)

// TTL round-trips through the wire to the store. Server stores use
// real time, so these tests use second-scale TTLs and only assert the
// not-yet-expired and store-accounting behaviour (expiry mechanics are
// unit-tested against a fake clock in internal/store).
func TestSetTTLRoundTrip(t *testing.T) {
	cl := startCluster(t, 5)
	for name, cfg := range map[string]core.Config{
		"none":      {Resilience: core.ResilienceNone},
		"async-rep": {Resilience: core.ResilienceAsyncRep, Replicas: 3},
		"era-ce-cd": {Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2},
		"era-se-sd": {Resilience: core.ResilienceErasure, Scheme: core.SchemeSESD, K: 3, M: 2},
	} {
		t.Run(name, func(t *testing.T) {
			c := newClient(t, cl, cfg)
			if err := c.SetTTL("ttl-"+name, []byte("v"), time.Hour); err != nil {
				t.Fatal(err)
			}
			if got, err := c.Get("ttl-" + name); err != nil || string(got) != "v" {
				t.Fatalf("get before expiry: %q, %v", got, err)
			}
		})
	}
}

func TestSetTTLExpires(t *testing.T) {
	cl := startCluster(t, 5)
	c := newClient(t, cl, core.Config{
		Resilience: core.ResilienceErasure, Scheme: core.SchemeCECD, K: 3, M: 2,
	})
	// The wire carries whole seconds (sub-second TTLs round up to 1s).
	if err := c.SetTTL("ephemeral", []byte("v"), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ephemeral"); err != nil {
		t.Fatalf("get before expiry: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Get("ephemeral"); errors.Is(err, core.ErrNotFound) {
			return // expired as expected
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("item did not expire within 5s of a 1s TTL")
}

func TestISetTTL(t *testing.T) {
	cl := startCluster(t, 5)
	c := newClient(t, cl, core.Config{Resilience: core.ResilienceNone})
	f := c.ISetTTL("k", []byte("v"), time.Hour)
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("get: %q, %v", got, err)
	}
}
