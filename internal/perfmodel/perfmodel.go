// Package perfmodel implements the paper's analytical latency model
// (Section III-A, Equations 1–8) for Set/Get operations under
// replication and RS(K,M) erasure coding. The benchmark harness uses
// it to cross-check the discrete-event simulator: measured (simulated)
// latencies must land between each scheme's naive and ideal bounds.
package perfmodel

import (
	"time"

	"ecstore/internal/calib"
	"ecstore/internal/simnet"
)

// Params holds the model inputs: the fabric (L and B), the coding cost
// model, the replication factor F, and the RS parameters (K, M).
type Params struct {
	// Profile supplies L (latency) and B (bandwidth).
	Profile simnet.Profile
	// Calib supplies T_encode and T_decode.
	Calib calib.Model
	// F is the replication factor.
	F int
	// K and M are the Reed-Solomon parameters; N = K + M.
	K, M int
	// TCheck is replication's fixed live-server selection overhead
	// (Equation 4).
	TCheck time.Duration
}

// N returns the erasure stripe width K + M.
func (p Params) N() int { return p.K + p.M }

// TComm is Equation 1: the communication time for a D-byte payload,
// T_comm(D) = L + D/B.
func (p Params) TComm(d int) time.Duration {
	return p.Profile.Latency + p.ser(d)
}

func (p Params) ser(d int) time.Duration {
	if p.Profile.BytesPerSec <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / p.Profile.BytesPerSec * float64(time.Second))
}

// chunk returns the per-chunk payload D/K.
func (p Params) chunk(d int) int {
	if p.K <= 0 {
		return d
	}
	return (d + p.K - 1) / p.K
}

// RepSet is Equation 2: synchronous replication writes F copies
// back to back, T = F · (L + D/B).
func (p Params) RepSet(d int) time.Duration {
	return time.Duration(p.F) * p.TComm(d)
}

// EraSet is Equation 3: naive (non-overlapped) erasure-coded write,
// T = T_encode(D) + N · (L + D/(B·K)).
func (p Params) EraSet(d int) time.Duration {
	return p.Calib.Encode.At(d) + time.Duration(p.N())*p.TComm(p.chunk(d))
}

// RepGet is Equation 4: replicated read from the primary,
// T = T_check + L + D/B.
func (p Params) RepGet(d int) time.Duration {
	return p.TCheck + p.TComm(d)
}

// EraGet is Equation 5: naive erasure-coded read aggregating K chunks,
// T = T_decode(D) + K · (L + D/(B·K)). failures selects the decode
// cost (0 when no chunk is missing).
func (p Params) EraGet(d, failures int) time.Duration {
	return p.Calib.DecodeFor(failures, d) + time.Duration(p.K)*p.TComm(p.chunk(d))
}

// RepSetIdeal is Equation 6: fully overlapped replication,
// T = max over replicas of (L + D/B) = L + D/B.
func (p Params) RepSetIdeal(d int) time.Duration {
	return p.TComm(d)
}

// EraSetIdeal is Equation 7: fully overlapped erasure-coded write,
// T = T_encode(D) + max over the N chunks of (L + D/(B·K)).
func (p Params) EraSetIdeal(d int) time.Duration {
	return p.Calib.Encode.At(d) + p.TComm(p.chunk(d))
}

// EraGetIdeal is Equation 8: fully overlapped erasure-coded read,
// T = T_decode(D) + max over the K chunks of (L + D/(B·K)).
func (p Params) EraGetIdeal(d, failures int) time.Duration {
	return p.Calib.DecodeFor(failures, d) + p.TComm(p.chunk(d))
}
