package perfmodel

import (
	"testing"
	"time"

	"ecstore/internal/calib"
	"ecstore/internal/simnet"
)

func testParams() Params {
	return Params{
		Profile: simnet.Profile{
			Name:        "model-test",
			Latency:     2 * time.Microsecond,
			BytesPerSec: 3.2e9,
		},
		Calib:  calib.Default,
		F:      3,
		K:      3,
		M:      2,
		TCheck: 500 * time.Nanosecond,
	}
}

func TestTComm(t *testing.T) {
	p := testParams()
	// 3200 bytes at 3.2 GB/s = 1µs; plus L = 2µs.
	if got := p.TComm(3200); got != 3*time.Microsecond {
		t.Fatalf("TComm = %v", got)
	}
	if got := p.TComm(0); got != 2*time.Microsecond {
		t.Fatalf("TComm(0) = %v", got)
	}
}

func TestRepSetIsFTimesTComm(t *testing.T) {
	p := testParams()
	d := 64 << 10
	if got, want := p.RepSet(d), 3*p.TComm(d); got != want {
		t.Fatalf("RepSet = %v, want %v", got, want)
	}
}

func TestIdealBoundsNaive(t *testing.T) {
	p := testParams()
	for _, d := range []int{512, 16 << 10, 1 << 20} {
		if p.RepSetIdeal(d) > p.RepSet(d) {
			t.Fatalf("rep ideal exceeds naive at %d", d)
		}
		if p.EraSetIdeal(d) > p.EraSet(d) {
			t.Fatalf("era set ideal exceeds naive at %d", d)
		}
		for _, f := range []int{0, 1, 2} {
			if p.EraGetIdeal(d, f) > p.EraGet(d, f) {
				t.Fatalf("era get ideal exceeds naive at %d, failures %d", d, f)
			}
		}
	}
}

func TestErasureReducesResponseWait(t *testing.T) {
	// The EC stripe sends D/K per chunk, so per-message response-wait
	// shrinks by ~K vs replication (Section III-A's observation).
	p := testParams()
	d := 1 << 20
	repWait := p.TComm(d)
	eraWait := p.TComm(p.chunk(d))
	if eraWait >= repWait {
		t.Fatalf("era per-chunk wait %v not below rep wait %v", eraWait, repWait)
	}
	// Roughly K-fold for large D where L is negligible.
	ratio := float64(repWait) / float64(eraWait)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("wait ratio %.2f, want ~3 (K)", ratio)
	}
}

func TestIdealEraSetBeatsSyncRepAtLargeD(t *testing.T) {
	// The headline claim: overlapped EC writes beat synchronous
	// replication by well over 2x for large values.
	p := testParams()
	d := 1 << 20
	speedup := float64(p.RepSet(d)) / float64(p.EraSetIdeal(d))
	if speedup < 1.2 {
		t.Fatalf("speedup %.2f; overlapped EC should beat sync-rep", speedup)
	}
}

func TestEraGetDegradedCostsMore(t *testing.T) {
	p := testParams()
	d := 256 << 10
	if p.EraGet(d, 2) <= p.EraGet(d, 0) {
		t.Fatal("degraded read not more expensive")
	}
	if p.EraGet(d, 2) <= p.EraGet(d, 1) {
		t.Fatal("two failures not more expensive than one")
	}
}

func TestRepGetCheaperThanDegradedEraGet(t *testing.T) {
	// Figure 8(c): replication only pays T_check under failures while
	// EC pays decode + K round trips.
	p := testParams()
	d := 256 << 10
	if p.RepGet(d) >= p.EraGet(d, 2) {
		t.Fatal("degraded EC read should cost more than replicated read")
	}
}

func TestN(t *testing.T) {
	if testParams().N() != 5 {
		t.Fatal("N != K+M")
	}
}

func TestChunkRoundsUp(t *testing.T) {
	p := testParams()
	if p.chunk(10) != 4 { // ceil(10/3)
		t.Fatalf("chunk(10) = %d", p.chunk(10))
	}
	p.K = 0
	if p.chunk(10) != 10 {
		t.Fatal("chunk with K=0 must pass through")
	}
}
