// Package nearcache is the client-side hot-key read-scaling layer: a
// singleflight group that coalesces concurrent reads of one key into a
// single backend fetch, and a size-bounded, version-stamped LRU over
// logical values that lets a proxy tier absorb zipfian hot reads
// instead of collapsing the key's home server (ROADMAP item 2; the
// design follows the lease/invalidate discipline of Nishtala et al.,
// "Scaling Memcache at Facebook").
//
// Consistency contract: every cached value carries the stripe version
// it was read at — the same token the CAS machinery checks — so a
// stale entry is self-correcting: a conditional write based on it
// fails with EXISTS, and the client invalidates the entry on every
// Cas outcome (cluster EXISTS responses carry no current version, so
// invalidation is unconditional rather than version-compared; Observe
// is the hook for transports that do surface authoritative versions).
// Entries are invalidated eagerly on local Set/Cas/Delete and on TTL
// or MaxAge expiry; a fill races a concurrent invalidation through
// per-slot generation counters (Begin/Put), so an invalidation between
// fetch and fill wins and the stale fill is dropped. The singleflight
// group is guarded by the same generation discipline: a local write
// bumps the key's flight generation (Group.Invalidate), and a later
// read refuses to coalesce onto a flight begun before the bump — so
// what a client reads is monotonic with respect to its own writes,
// with or without the cache. Cross-client staleness is bounded by
// MaxAge/TTL and corrected by the version stamp on the first
// conditional write.
//
// Lease discipline: values handed out and taken in are always copies.
// Put copies the caller's bytes (which may alias a pooled frame about
// to be released), Get returns a fresh copy per caller (callers may
// mutate their result), and the singleflight group copies the leader's
// result for every coalesced waiter before the leader's own return
// value escapes — no released or shared buffer is ever visible to two
// owners.
package nearcache

import (
	"container/list"
	"errors"
	"sync"
	"time"

	"ecstore/internal/metrics"
)

// genSlots is the size of the striped generation table guarding fills
// against concurrent invalidations. Collisions are safe (a colliding
// invalidation drops an unrelated in-flight fill, never serves stale
// data) and at 1024 slots rare enough not to matter.
const genSlots = 1024

// entryOverhead approximates the per-entry bookkeeping cost charged
// against MaxBytes on top of key and value bytes.
const entryOverhead = 64

// Value is a cached logical value: the payload bytes, the stripe
// version they were read at (the CAS token), and the item's own
// remaining TTL in whole seconds at the time of the read (0 = no
// expiry). The MaxAge residency cap never leaks into TTL — callers
// persist this field back to the cluster (the proxy's
// read-modify-write commands keep an item's TTL across append/incr),
// so reporting the cap here would silently truncate real lifetimes.
type Value struct {
	Data    []byte
	Version uint64
	TTL     uint32
}

type entry struct {
	key     string
	data    []byte
	version uint64
	expires time.Time // the item's own TTL deadline; zero = no expiry
	staleAt time.Time // the MaxAge residency deadline; zero = no cap
	charge  int64
}

// Config configures a Cache.
type Config struct {
	// MaxBytes bounds the total charge (key + value + overhead) of
	// cached entries; the least recently used entries are evicted to
	// stay under it. Required (> 0).
	MaxBytes int64
	// MaxAge caps how long any entry may be served regardless of its
	// item TTL — a safety valve on cross-client staleness
	// (0 = no cap). It bounds residency only: the TTL a Get reports
	// always reflects the item's own lifetime, never this cap.
	MaxAge time.Duration
	// Metrics receives the cache's hit/miss/eviction/invalidation
	// counters and size gauges (nil discards them).
	Metrics *metrics.Registry
	// Now overrides the clock (tests only; time.Now if nil).
	Now func() time.Time
}

// Cache is the size-bounded version-stamped LRU. A nil *Cache is valid
// and behaves as an always-miss cache, so callers can thread an
// optional cache without nil checks. Caches are safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	max     int64
	maxAge  time.Duration
	used    int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	gens    [genSlots]uint64
	now     func() time.Time

	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	invalidations *metrics.Counter
	fillsDropped  *metrics.Counter
	bytesGauge    *metrics.Gauge
	itemsGauge    *metrics.Gauge
}

// New returns a Cache; nil if cfg.MaxBytes <= 0 (caching disabled).
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Metrics
	return &Cache{
		max:           cfg.MaxBytes,
		maxAge:        cfg.MaxAge,
		ll:            list.New(),
		entries:       make(map[string]*list.Element),
		now:           now,
		hits:          reg.Counter("ecstore_client_nearcache_hits_total"),
		misses:        reg.Counter("ecstore_client_nearcache_misses_total"),
		evictions:     reg.Counter("ecstore_client_nearcache_evictions_total"),
		invalidations: reg.Counter("ecstore_client_nearcache_invalidations_total"),
		fillsDropped:  reg.Counter("ecstore_client_nearcache_fills_dropped_total"),
		bytesGauge:    reg.Gauge("ecstore_client_nearcache_bytes"),
		itemsGauge:    reg.Gauge("ecstore_client_nearcache_items"),
	}
}

func genSlot(key string) int {
	// FNV-1a over the key bytes; inlined to keep the hot path
	// allocation-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % genSlots)
}

// Begin opens a fill attempt for key: the returned generation must be
// passed to Put, which drops the fill if any invalidation of the key
// (or a slot collision) happened in between. Call it BEFORE issuing
// the backend read the fill's value comes from.
func (c *Cache) Begin(key string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	g := c.gens[genSlot(key)]
	c.mu.Unlock()
	return g
}

// Get returns a copy of the cached value for key. A miss, an entry
// past its item TTL, or an entry past MaxAge returns ok = false
// (expired entries are dropped). The returned Value's TTL is the
// item's own remaining lifetime in whole seconds, rounded up — the
// residency cap only decides serve/expire and is never reported.
func (c *Cache) Get(key string) (Value, bool) {
	if c == nil {
		return Value{}, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		c.mu.Unlock()
		return Value{}, false
	}
	e := el.Value.(*entry)
	now := c.now()
	if (!e.expires.IsZero() && !e.expires.After(now)) ||
		(!e.staleAt.IsZero() && !e.staleAt.After(now)) {
		c.removeLocked(el)
		c.misses.Inc()
		c.mu.Unlock()
		return Value{}, false
	}
	var remaining uint32
	if !e.expires.IsZero() {
		remaining = uint32((e.expires.Sub(now) + time.Second - 1) / time.Second)
	}
	c.ll.MoveToFront(el)
	v := Value{
		Data:    append([]byte(nil), e.data...),
		Version: e.version,
		TTL:     remaining,
	}
	c.hits.Inc()
	c.mu.Unlock()
	return v, true
}

// Put installs a copy of v under key, unless an invalidation of key
// happened since gen was read with Begin (the fill lost the race and
// is dropped — installing it would resurrect a value a local write
// just overtook). Values too large to ever fit are rejected. Evicts
// least-recently-used entries until the cache fits MaxBytes again.
func (c *Cache) Put(key string, v Value, gen uint64) {
	if c == nil {
		return
	}
	charge := int64(len(key)) + int64(len(v.Data)) + entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if charge > c.max {
		return
	}
	if c.gens[genSlot(key)] != gen {
		c.fillsDropped.Inc()
		return
	}
	var expires time.Time
	if v.TTL > 0 {
		expires = c.now().Add(time.Duration(v.TTL) * time.Second)
	}
	var staleAt time.Time
	if c.maxAge > 0 {
		staleAt = c.now().Add(c.maxAge)
	}
	e := &entry{
		key:     key,
		data:    append([]byte(nil), v.Data...),
		version: v.Version,
		expires: expires,
		staleAt: staleAt,
		charge:  charge,
	}
	if el, ok := c.entries[key]; ok {
		c.used -= el.Value.(*entry).charge
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(e)
	}
	c.used += charge
	for c.used > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Inc()
	}
	c.bytesGauge.Set(c.used)
	c.itemsGauge.Set(int64(len(c.entries)))
}

// Invalidate drops key and bumps its generation slot, so any fill in
// flight (Begin called before this) is dropped at Put.
func (c *Cache) Invalidate(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gens[genSlot(key)]++
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
		c.invalidations.Inc()
	}
	c.mu.Unlock()
}

// InvalidateAll empties the cache and bumps every generation slot
// (flush_all).
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	for i := range c.gens {
		c.gens[i]++
	}
	n := int64(len(c.entries))
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.used = 0
	c.invalidations.Add(n)
	c.bytesGauge.Set(0)
	c.itemsGauge.Set(0)
	c.mu.Unlock()
}

// Observe reports an authoritative (key, version) sighting from a
// response that carries the current version next to a possibly-cached
// entry. If the cached entry disagrees it is invalidated: the entry is
// provably stale.
//
// This is an integration hook, not a path the core client uses: the
// cluster's EXISTS responses carry no current version, so the client's
// Cas path invalidates unconditionally on every outcome instead, and
// a cluster read only happens after a cache miss (no live entry left
// to compare). Transports whose responses do surface authoritative
// versions (scans, richer EXISTS payloads) should call this on each
// sighting.
func (c *Cache) Observe(key string, version uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*entry).version != version {
		c.gens[genSlot(key)]++
		c.removeLocked(el)
		c.invalidations.Inc()
	}
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the current charged size.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.used -= e.charge
	c.bytesGauge.Set(c.used)
	c.itemsGauge.Set(int64(len(c.entries)))
}

// ---- singleflight ----

type flightResult struct {
	v   Value
	err error
}

type flight struct {
	gen     uint64 // key's generation when the flight was created
	waiters []chan flightResult
}

// Group coalesces concurrent fetches of one key: the first caller (the
// leader) runs fn; callers arriving while it is in flight wait and
// receive the leader's result instead of dialing themselves. The zero
// Group is ready to use.
//
// Ownership: each waiter receives its own copy of the result bytes,
// made by the leader BEFORE its own return value escapes — so no two
// callers ever share a buffer, and fn's result may alias memory the
// leader's caller will mutate. Errors are shared as-is (errors are
// immutable).
//
// Write ordering: flights are generation-guarded. Invalidate (called
// after every local write of the key) bumps the key's generation, and
// Do refuses to coalesce onto a flight created under an older
// generation — without the guard, a read issued after the caller's own
// completed write could park on a fetch that began before the write
// and return the pre-write value. A superseded flight still delivers
// to the waiters that joined it before the bump; their reads preceded
// the write, so the older result is consistent for them.
type Group struct {
	mu      sync.Mutex
	gens    [genSlots]uint64
	flights map[string]*flight
}

// Do runs fn for key, coalescing with an in-flight call if one exists
// and no invalidation of key happened since that call began.
// coalesced reports whether this caller shared another caller's fetch
// (true for waiters, false for the leader).
func (g *Group) Do(key string, fn func() (Value, error)) (v Value, coalesced bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	cur := g.gens[genSlot(key)]
	if f, ok := g.flights[key]; ok && f.gen == cur {
		ch := make(chan flightResult, 1)
		f.waiters = append(f.waiters, ch)
		g.mu.Unlock()
		r := <-ch
		return r.v, true, r.err
	}
	// Either no flight exists, or the one in flight predates an
	// invalidation of key (its generation is stale): joining it could
	// return a value fetched before this caller's own completed write.
	// Become the leader of a fresh flight instead, superseding the
	// stale one in the map.
	f := &flight{gen: cur}
	g.flights[key] = f
	g.mu.Unlock()

	v, err = fn()

	// Unregister before distributing: a Get arriving after this point
	// starts a fresh fetch instead of waiting on an already-finished
	// one (and observing ever-staler data). Delete only if the map
	// still points at this flight — a superseded flight must not tear
	// down its replacement.
	g.mu.Lock()
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	waiters := f.waiters
	g.mu.Unlock()
	for _, ch := range waiters {
		r := flightResult{err: err}
		if err == nil {
			r.v = Value{
				Data:    append([]byte(nil), v.Data...),
				Version: v.Version,
				TTL:     v.TTL,
			}
		}
		ch <- r
	}
	return v, false, err
}

// errNoFlightResult is delivered to waiters (and reported for led
// keys) when a DoBulk fetch returns neither a value nor an error for a
// key it was asked to lead — a fetch-contract violation surfaced as an
// error rather than a hang or a silent miss.
var errNoFlightResult = errors.New("nearcache: fetch returned no result for key")

// DoBulk is Do over a key set: each key independently either joins an
// in-flight fetch of the same generation or is led by this call, and
// fetch runs ONCE for all led keys together — that is what lets a bulk
// read stay one frame per server while still coalescing per key with
// concurrent readers. fetch must cover every lead key in values or
// errs; a key it omits reports errNoFlightResult.
//
// values and errs are keyed like fetch's returns (disjoint; a key
// appears in exactly one); joined counts the keys satisfied from
// another caller's fetch. Ownership matches Do: every waiter gets its
// own copy of the bytes, and results delivered to this caller from
// another flight are that flight's copies.
//
// Deadlock discipline: led keys are fetched and their waiters served
// BEFORE this call parks on the flights it joined — two DoBulk calls
// that each join a key the other leads hand off results instead of
// waiting on each other.
func (g *Group) DoBulk(keys []string, fetch func(lead []string) (values map[string]Value, errs map[string]error)) (values map[string]Value, errs map[string]error, joined int) {
	values = make(map[string]Value, len(keys))
	errs = make(map[string]error)

	type joinedFlight struct {
		key string
		ch  chan flightResult
	}
	var joins []joinedFlight
	var lead []string
	led := make(map[string]*flight)
	seen := make(map[string]bool, len(keys))

	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		cur := g.gens[genSlot(key)]
		if f, ok := g.flights[key]; ok && f.gen == cur {
			ch := make(chan flightResult, 1)
			f.waiters = append(f.waiters, ch)
			joins = append(joins, joinedFlight{key: key, ch: ch})
			continue
		}
		f := &flight{gen: cur}
		g.flights[key] = f
		led[key] = f
		lead = append(lead, key)
	}
	g.mu.Unlock()

	var fetched map[string]Value
	var fetchErrs map[string]error
	if len(lead) > 0 {
		fetched, fetchErrs = fetch(lead)
	}

	// Unregister led flights (only where the map still points at ours —
	// a superseded flight must not tear down its replacement), then
	// deliver to their waiters before parking on our own joins.
	g.mu.Lock()
	waitersByKey := make(map[string][]chan flightResult, len(led))
	for key, f := range led {
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		waitersByKey[key] = f.waiters
	}
	g.mu.Unlock()
	for _, key := range lead {
		switch {
		case fetchErrs[key] != nil:
			errs[key] = fetchErrs[key]
		default:
			v, ok := fetched[key]
			if !ok {
				errs[key] = errNoFlightResult
				break
			}
			values[key] = v
		}
		for _, ch := range waitersByKey[key] {
			r := flightResult{err: errs[key]}
			if _, failed := errs[key]; !failed {
				r.v = Value{
					Data:    append([]byte(nil), values[key].Data...),
					Version: values[key].Version,
					TTL:     values[key].TTL,
				}
			}
			ch <- r
		}
	}

	for _, j := range joins {
		r := <-j.ch
		joined++
		if r.err != nil {
			errs[j.key] = r.err
		} else {
			values[j.key] = r.v
		}
	}
	return values, errs, joined
}

// Invalidate marks any in-flight fetch of key as predating a write:
// callers arriving after this bump start a fresh fetch instead of
// coalescing onto it. Called after every local Set/Cas/Delete of key —
// this is what keeps coalesced reads monotonic with respect to the
// caller's own writes.
func (g *Group) Invalidate(key string) {
	g.mu.Lock()
	g.gens[genSlot(key)]++
	g.mu.Unlock()
}

// InvalidateAll bumps every generation slot (flush_all): no caller
// coalesces onto any flight begun before the flush.
func (g *Group) InvalidateAll() {
	g.mu.Lock()
	for i := range g.gens {
		g.gens[i]++
	}
	g.mu.Unlock()
}
