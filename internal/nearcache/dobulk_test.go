package nearcache

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoBulkLeadsAllWhenIdle(t *testing.T) {
	var g Group
	var calls int32
	var gotLead []string
	values, errs, joined := g.DoBulk([]string{"b", "a", "c"}, func(lead []string) (map[string]Value, map[string]error) {
		atomic.AddInt32(&calls, 1)
		gotLead = append([]string(nil), lead...)
		return map[string]Value{
				"a": {Data: []byte("va"), Version: 1},
				"b": {Data: []byte("vb"), Version: 2},
			}, map[string]error{
				"c": errors.New("boom"),
			}
	})
	if calls != 1 {
		t.Fatalf("fetch ran %d times, want 1", calls)
	}
	sort.Strings(gotLead)
	if fmt.Sprint(gotLead) != "[a b c]" {
		t.Fatalf("lead = %v, want all three keys", gotLead)
	}
	if joined != 0 {
		t.Fatalf("joined = %d with no concurrent flights", joined)
	}
	if len(values) != 2 || !bytes.Equal(values["a"].Data, []byte("va")) || values["b"].Version != 2 {
		t.Fatalf("values = %v", values)
	}
	if len(errs) != 1 || errs["c"] == nil || errs["c"].Error() != "boom" {
		t.Fatalf("errs = %v", errs)
	}
}

func TestDoBulkDedupesKeys(t *testing.T) {
	var g Group
	values, errs, _ := g.DoBulk([]string{"k", "k", "j", "k"}, func(lead []string) (map[string]Value, map[string]error) {
		if len(lead) != 2 {
			t.Errorf("lead = %v, want 2 distinct keys", lead)
		}
		out := make(map[string]Value, len(lead))
		for _, key := range lead {
			out[key] = Value{Data: []byte(key)}
		}
		return out, nil
	})
	if len(errs) != 0 || len(values) != 2 {
		t.Fatalf("values=%v errs=%v", values, errs)
	}
}

func TestDoBulkOmittedLeadKeyReportsError(t *testing.T) {
	var g Group
	values, errs, _ := g.DoBulk([]string{"present", "forgotten"}, func(lead []string) (map[string]Value, map[string]error) {
		return map[string]Value{"present": {Data: []byte("v")}}, nil
	})
	if _, ok := values["present"]; !ok {
		t.Fatal("covered key missing from values")
	}
	if !errors.Is(errs["forgotten"], errNoFlightResult) {
		t.Fatalf("omitted key reported %v, want errNoFlightResult", errs["forgotten"])
	}
}

// TestDoBulkJoinsInFlightDo: keys already being fetched by a Do leader
// are joined, not re-fetched — and the joined result is this caller's
// own copy of the bytes.
func TestDoBulkJoinsInFlightDo(t *testing.T) {
	var g Group
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	leaderDone := make(chan Value, 1)
	go func() {
		v, _, _ := g.Do("hot", func() (Value, error) {
			close(leaderIn)
			<-release
			return Value{Data: []byte("shared"), Version: 7}, nil
		})
		leaderDone <- v
	}()
	<-leaderIn

	var fetchLead []string
	done := make(chan struct{})
	var values map[string]Value
	var errs map[string]error
	var joined int
	go func() {
		defer close(done)
		values, errs, joined = g.DoBulk([]string{"hot", "cold"}, func(lead []string) (map[string]Value, map[string]error) {
			fetchLead = append([]string(nil), lead...)
			// Registration (including the join on "hot") happened before
			// this fetch ran, so the leader may finish now.
			close(release)
			return map[string]Value{"cold": {Data: []byte("mine")}}, nil
		})
	}()
	// The bulk call parks on "hot" until the leader finishes.
	<-done

	if fmt.Sprint(fetchLead) != "[cold]" {
		t.Fatalf("bulk fetch led %v, want only the un-flighted key", fetchLead)
	}
	if joined != 1 {
		t.Fatalf("joined = %d, want 1", joined)
	}
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if !bytes.Equal(values["hot"].Data, []byte("shared")) || values["hot"].Version != 7 {
		t.Fatalf(`values["hot"] = %v`, values["hot"])
	}
	// The joined bytes must be a private copy, not the leader's buffer.
	leaderV := <-leaderDone
	leaderV.Data[0] = 'X'
	if values["hot"].Data[0] == 'X' {
		t.Fatal("joined waiter shares the leader's buffer")
	}
}

// TestDoBulkServesDoWaiters: a Do call that parks on a key DoBulk is
// leading receives the bulk fetch's result (its own copy), and the
// bulk caller counts no join for it.
func TestDoBulkServesDoWaiters(t *testing.T) {
	var g Group
	fetchIn := make(chan struct{})
	release := make(chan struct{})
	bulkDone := make(chan struct{})
	go func() {
		defer close(bulkDone)
		g.DoBulk([]string{"led"}, func(lead []string) (map[string]Value, map[string]error) {
			close(fetchIn)
			<-release
			return map[string]Value{"led": {Data: []byte("bulk"), Version: 3}}, nil
		})
	}()
	<-fetchIn

	waiterDone := make(chan struct{})
	var wv Value
	var wCoalesced bool
	go func() {
		defer close(waiterDone)
		wv, wCoalesced, _ = g.Do("led", func() (Value, error) {
			t.Error("waiter ran its own fetch instead of joining the bulk flight")
			return Value{}, nil
		})
	}()
	// Give the waiter time to park on the bulk flight, then release it.
	waitForWaiter(t, &g, "led", 1)
	close(release)
	<-waiterDone
	<-bulkDone

	if !wCoalesced {
		t.Fatal("Do call did not coalesce onto the bulk flight")
	}
	if !bytes.Equal(wv.Data, []byte("bulk")) || wv.Version != 3 {
		t.Fatalf("waiter got %v", wv)
	}
}

// TestDoBulkErrorSharedWithWaiters: a failed bulk fetch delivers the
// error (and errNoFlightResult for omitted keys) to parked waiters.
func TestDoBulkErrorSharedWithWaiters(t *testing.T) {
	var g Group
	boom := errors.New("backend down")
	fetchIn := make(chan struct{})
	release := make(chan struct{})
	bulkDone := make(chan map[string]error, 1)
	go func() {
		_, errs, _ := g.DoBulk([]string{"bad", "lost"}, func(lead []string) (map[string]Value, map[string]error) {
			close(fetchIn)
			<-release
			return nil, map[string]error{"bad": boom}
		})
		bulkDone <- errs
	}()
	<-fetchIn

	type res struct {
		err error
	}
	badCh := make(chan res, 1)
	lostCh := make(chan res, 1)
	go func() {
		_, _, err := g.Do("bad", func() (Value, error) { return Value{}, nil })
		badCh <- res{err}
	}()
	go func() {
		_, _, err := g.Do("lost", func() (Value, error) { return Value{}, nil })
		lostCh <- res{err}
	}()
	waitForWaiter(t, &g, "bad", 1)
	waitForWaiter(t, &g, "lost", 1)
	close(release)

	errs := <-bulkDone
	if !errors.Is(errs["bad"], boom) || !errors.Is(errs["lost"], errNoFlightResult) {
		t.Fatalf("bulk errs = %v", errs)
	}
	if r := <-badCh; !errors.Is(r.err, boom) {
		t.Fatalf("waiter on failed key got %v", r.err)
	}
	if r := <-lostCh; !errors.Is(r.err, errNoFlightResult) {
		t.Fatalf("waiter on omitted key got %v", r.err)
	}
}

// TestDoBulkGenerationGuard: an Invalidate between a flight's creation
// and a DoBulk call must prevent coalescing — the bulk call leads a
// fresh fetch so the caller's own completed write is visible.
func TestDoBulkGenerationGuard(t *testing.T) {
	var g Group
	staleIn := make(chan struct{})
	release := make(chan struct{})
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		g.Do("w", func() (Value, error) {
			close(staleIn)
			<-release
			return Value{Data: []byte("stale")}, nil
		})
	}()
	<-staleIn

	// The local write completed: anything fetched before it is old news.
	g.Invalidate("w")

	var fetchCalls int32
	values, errs, joined := g.DoBulk([]string{"w"}, func(lead []string) (map[string]Value, map[string]error) {
		atomic.AddInt32(&fetchCalls, 1)
		return map[string]Value{"w": {Data: []byte("fresh")}}, nil
	})
	if fetchCalls != 1 {
		t.Fatalf("post-invalidate DoBulk ran fetch %d times, want a fresh lead", fetchCalls)
	}
	if joined != 0 {
		t.Fatal("DoBulk coalesced onto a flight that predates the invalidation")
	}
	if len(errs) != 0 || !bytes.Equal(values["w"].Data, []byte("fresh")) {
		t.Fatalf("values=%v errs=%v", values, errs)
	}
	close(release)
	<-staleDone
}

// TestDoBulkConcurrentStorm: many DoBulk callers over an overlapping
// key space must produce exactly one fetch per (key, storm) — every
// caller gets every key, and total leads+joins account for every
// request.
func TestDoBulkConcurrentStorm(t *testing.T) {
	var g Group
	const callers = 16
	keys := []string{"s0", "s1", "s2", "s3"}
	var fetches int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	perKeyLeads := make(map[string]int32)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			values, errs, _ := g.DoBulk(keys, func(lead []string) (map[string]Value, map[string]error) {
				atomic.AddInt32(&fetches, 1)
				out := make(map[string]Value, len(lead))
				mu.Lock()
				for _, key := range lead {
					perKeyLeads[key]++
					out[key] = Value{Data: []byte("v-" + key)}
				}
				mu.Unlock()
				return out, nil
			})
			if len(errs) != 0 || len(values) != len(keys) {
				t.Errorf("storm caller: values=%d errs=%v", len(values), errs)
			}
			for _, key := range keys {
				if !bytes.Equal(values[key].Data, []byte("v-"+key)) {
					t.Errorf("storm caller: %s = %q", key, values[key].Data)
				}
			}
		}()
	}
	close(gate)
	wg.Wait()
	// Coalescing is timing-dependent, but correctness is not: every key
	// was led at least once and never more than once per caller.
	for key, n := range perKeyLeads {
		if n < 1 || n > callers {
			t.Fatalf("%s led %d times", key, n)
		}
	}
	if fetches > callers {
		t.Fatalf("%d fetch invocations for %d callers", fetches, callers)
	}
}

// waitForWaiter polls until key's in-flight fetch has n parked waiters.
func waitForWaiter(t *testing.T, g *Group, key string, n int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		g.mu.Lock()
		f := g.flights[key]
		waiters := 0
		if f != nil {
			waiters = len(f.waiters)
		}
		g.mu.Unlock()
		if waiters >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flight %q never accumulated %d waiters", key, n)
}
