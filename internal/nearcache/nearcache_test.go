package nearcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/metrics"
)

// fakeClock is an adjustable clock for deadline tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newCache(t *testing.T, maxBytes int64, clk *fakeClock) (*Cache, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := Config{MaxBytes: maxBytes, Metrics: reg}
	if clk != nil {
		cfg.Now = clk.now
	}
	c := New(cfg)
	if c == nil {
		t.Fatal("New returned nil for positive MaxBytes")
	}
	return c, reg
}

func TestNewDisabled(t *testing.T) {
	if New(Config{MaxBytes: 0}) != nil {
		t.Fatal("MaxBytes=0 should disable the cache")
	}
	if New(Config{MaxBytes: -1}) != nil {
		t.Fatal("negative MaxBytes should disable the cache")
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must always miss")
	}
	c.Put("k", Value{Data: []byte("v")}, c.Begin("k"))
	c.Invalidate("k")
	c.InvalidateAll()
	c.Observe("k", 1)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache must be empty")
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	c, reg := newCache(t, 1<<20, nil)
	c.Put("k", Value{Data: []byte("hello"), Version: 7, TTL: 0}, c.Begin("k"))
	v, ok := c.Get("k")
	if !ok {
		t.Fatal("expected hit")
	}
	if string(v.Data) != "hello" || v.Version != 7 || v.TTL != 0 {
		t.Fatalf("got %+v", v)
	}
	snap := reg.Snapshot()
	if snap.Counter("ecstore_client_nearcache_hits_total") != 1 {
		t.Fatalf("hits = %d, want 1", snap.Counter("ecstore_client_nearcache_hits_total"))
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("expected miss")
	}
	if got := reg.Snapshot().Counter("ecstore_client_nearcache_misses_total"); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

// Every Get must hand out an independent copy: mutating one caller's
// result must not leak into the cache or other callers.
func TestGetReturnsCopies(t *testing.T) {
	c, _ := newCache(t, 1<<20, nil)
	c.Put("k", Value{Data: []byte("aaaa"), Version: 1}, c.Begin("k"))
	v1, _ := c.Get("k")
	v1.Data[0] = 'Z'
	v2, ok := c.Get("k")
	if !ok || string(v2.Data) != "aaaa" {
		t.Fatalf("cache entry corrupted by caller mutation: %q", v2.Data)
	}
}

// Put must copy the caller's bytes: the caller may hand in a buffer it
// reuses (or returns to a frame pool) right after.
func TestPutCopiesData(t *testing.T) {
	c, _ := newCache(t, 1<<20, nil)
	buf := []byte("original")
	c.Put("k", Value{Data: buf, Version: 1}, c.Begin("k"))
	copy(buf, "clobber!")
	v, ok := c.Get("k")
	if !ok || string(v.Data) != "original" {
		t.Fatalf("cache aliased caller buffer: %q", v.Data)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, _ := newCache(t, 1<<20, clk)
	c.Put("k", Value{Data: []byte("v"), Version: 1, TTL: 10}, c.Begin("k"))
	v, ok := c.Get("k")
	if !ok || v.TTL != 10 {
		t.Fatalf("fresh entry: ok=%v ttl=%d", ok, v.TTL)
	}
	clk.advance(4 * time.Second)
	if v, ok = c.Get("k"); !ok || v.TTL != 6 {
		t.Fatalf("after 4s: ok=%v ttl=%d, want 6", ok, v.TTL)
	}
	clk.advance(7 * time.Second)
	if _, ok = c.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not dropped")
	}
}

func TestMaxAgeCapsResidency(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := metrics.NewRegistry()
	c := New(Config{MaxBytes: 1 << 20, MaxAge: 2 * time.Second, Metrics: reg, Now: clk.now})
	// No item TTL, but MaxAge still bounds it.
	c.Put("k", Value{Data: []byte("v"), Version: 1}, c.Begin("k"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missed")
	}
	clk.advance(3 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry served past MaxAge")
	}
	// An item TTL shorter than MaxAge wins.
	c.Put("s", Value{Data: []byte("v"), Version: 1, TTL: 1}, c.Begin("s"))
	clk.advance(1500 * time.Millisecond)
	if _, ok := c.Get("s"); ok {
		t.Fatal("entry served past item TTL")
	}
}

// The MaxAge residency cap bounds how long an entry is served but must
// never leak into the TTL Get reports: proxy read-modify-write paths
// persist that TTL back to the cluster through cas, so a capped report
// would silently truncate the item's real lifetime (and give a
// no-expiry item a ~MaxAge one).
func TestMaxAgeDoesNotLeakIntoReportedTTL(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := metrics.NewRegistry()
	c := New(Config{MaxBytes: 1 << 20, MaxAge: 2 * time.Second, Metrics: reg, Now: clk.now})

	// No item TTL: reported TTL must stay 0 (no expiry)...
	c.Put("forever", Value{Data: []byte("v"), Version: 1}, c.Begin("forever"))
	if v, ok := c.Get("forever"); !ok || v.TTL != 0 {
		t.Fatalf("no-expiry entry: ok=%v ttl=%d, want ttl 0", ok, v.TTL)
	}
	// ...even though MaxAge still stops serving it.
	clk.advance(3 * time.Second)
	if _, ok := c.Get("forever"); ok {
		t.Fatal("no-expiry entry served past MaxAge")
	}

	// An item TTL far above MaxAge is reported in full, not clamped.
	c.Put("hour", Value{Data: []byte("v"), Version: 1, TTL: 3600}, c.Begin("hour"))
	clk.advance(time.Second)
	if v, ok := c.Get("hour"); !ok || v.TTL != 3599 {
		t.Fatalf("1h entry after 1s: ok=%v ttl=%d, want 3599", ok, v.TTL)
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Get("hour"); ok {
		t.Fatal("1h entry served past MaxAge")
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits two entries of charge 1+1+64 = 66.
	c, reg := newCache(t, 150, nil)
	c.Put("a", Value{Data: []byte("1")}, c.Begin("a"))
	c.Put("b", Value{Data: []byte("2")}, c.Begin("b"))
	c.Get("a") // a is now more recently used than b
	c.Put("c", Value{Data: []byte("3")}, c.Begin("c"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if got := reg.Snapshot().Counter("ecstore_client_nearcache_evictions_total"); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if c.Bytes() > 150 {
		t.Fatalf("over budget: %d", c.Bytes())
	}
}

func TestPutRejectsOversized(t *testing.T) {
	c, _ := newCache(t, 100, nil)
	c.Put("k", Value{Data: make([]byte, 200)}, c.Begin("k"))
	if c.Len() != 0 {
		t.Fatal("oversized value cached")
	}
}

func TestPutReplaceAdjustsCharge(t *testing.T) {
	c, _ := newCache(t, 1<<10, nil)
	c.Put("k", Value{Data: make([]byte, 100)}, c.Begin("k"))
	before := c.Bytes()
	c.Put("k", Value{Data: make([]byte, 10), Version: 2}, c.Begin("k"))
	after := c.Bytes()
	if after >= before {
		t.Fatalf("replace did not shrink charge: %d -> %d", before, after)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	v, _ := c.Get("k")
	if v.Version != 2 || len(v.Data) != 10 {
		t.Fatalf("replace lost: %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c, reg := newCache(t, 1<<20, nil)
	c.Put("k", Value{Data: []byte("v"), Version: 1}, c.Begin("k"))
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated entry served")
	}
	if got := reg.Snapshot().Counter("ecstore_client_nearcache_invalidations_total"); got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
}

func TestInvalidateAll(t *testing.T) {
	c, _ := newCache(t, 1<<20, nil)
	gen := c.Begin("a")
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Put(k, Value{Data: []byte("v")}, c.Begin(k))
	}
	c.InvalidateAll()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("cache not emptied: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// A fill begun before the flush must be dropped.
	c.Put("a", Value{Data: []byte("stale")}, gen)
	if _, ok := c.Get("a"); ok {
		t.Fatal("pre-flush fill installed after InvalidateAll")
	}
}

// The fill-race guard: an invalidation between Begin and Put must win,
// dropping the (possibly stale) fill.
func TestFillLosesRaceToInvalidation(t *testing.T) {
	c, reg := newCache(t, 1<<20, nil)
	gen := c.Begin("k")
	// ... fill reads version 1 from the backend; meanwhile a local
	// write invalidates:
	c.Invalidate("k")
	c.Put("k", Value{Data: []byte("stale"), Version: 1}, gen)
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale fill resurrected an invalidated key")
	}
	if got := reg.Snapshot().Counter("ecstore_client_nearcache_fills_dropped_total"); got != 1 {
		t.Fatalf("fills_dropped = %d, want 1", got)
	}
	// A fresh fill (Begin after the invalidation) installs fine.
	c.Put("k", Value{Data: []byte("fresh"), Version: 2}, c.Begin("k"))
	if v, ok := c.Get("k"); !ok || string(v.Data) != "fresh" {
		t.Fatal("fresh fill after invalidation did not install")
	}
}

func TestObserve(t *testing.T) {
	c, _ := newCache(t, 1<<20, nil)
	gen := c.Begin("k")
	c.Put("k", Value{Data: []byte("v1"), Version: 1}, gen)
	c.Observe("k", 1) // matching version: keep
	if _, ok := c.Get("k"); !ok {
		t.Fatal("matching Observe dropped the entry")
	}
	before := c.Begin("k")
	c.Observe("k", 2) // version moved on: drop
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale entry survived Observe of newer version")
	}
	if c.Begin("k") == before {
		t.Fatal("Observe mismatch must bump the generation")
	}
	c.Observe("absent", 3) // no entry: no-op
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	coalesced := atomic.Int64{}
	values := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (Value, error) {
				calls.Add(1)
				close(started)
				<-release
				return Value{Data: []byte("payload"), Version: 9, TTL: 3}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if shared {
				coalesced.Add(1)
			}
			if string(v.Data) != "payload" || v.Version != 9 || v.TTL != 3 {
				t.Errorf("waiter %d got %+v", i, v)
			}
			values[i] = v.Data
		}(i)
	}
	<-started
	// Give the other goroutines a moment to register as waiters; those
	// that lose the race simply start their own flight, which is
	// correct but not what this test measures.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() >= n {
		t.Fatalf("no coalescing: %d backend calls for %d concurrent gets", calls.Load(), n)
	}
	if coalesced.Load() == 0 {
		t.Fatal("no waiter reported coalesced")
	}
	// Lease discipline: every waiter owns its bytes — no two slices
	// may alias.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(values[i]) > 0 && len(values[j]) > 0 && &values[i][0] == &values[j][0] {
				t.Fatalf("waiters %d and %d share a buffer", i, j)
			}
		}
	}
}

func TestSingleflightErrorShared(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := g.Do("k", func() (Value, error) {
				close(started)
				<-release
				return Value{}, boom
			})
			errs[i] = err
		}(i)
	}
	<-started
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err = %v, want boom", i, err)
		}
	}
}

func TestSingleflightDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, _, err := g.Do(key, func() (Value, error) {
				calls.Add(1)
				return Value{Data: []byte(key)}, nil
			})
			if err != nil || string(v.Data) != key {
				t.Errorf("key %s: %v %q", key, err, v.Data)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want 4", calls.Load())
	}
}

// A Get must never coalesce onto a flight that began before the
// caller's own completed write: Invalidate bumps the key's flight
// generation, so later callers start a fresh fetch and see the
// post-write value while the pre-write leader is still in flight
// (read-your-writes through the singleflight layer).
func TestSingleflightInvalidateBreaksCoalescing(t *testing.T) {
	var g Group
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderV Value
	go func() {
		defer wg.Done()
		leaderV, _, _ = g.Do("k", func() (Value, error) {
			close(started)
			<-release
			return Value{Data: []byte("old"), Version: 1}, nil
		})
	}()
	<-started

	// A reader that parked before the write keeps the pre-write result
	// (its read preceded the write, so "old" is consistent for it).
	wg.Add(1)
	var preV Value
	var preShared bool
	go func() {
		defer wg.Done()
		preV, preShared, _ = g.Do("k", func() (Value, error) {
			return Value{Data: []byte("fresh-pre")}, nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let it park as a waiter

	// The caller's write completes: bump the generation.
	g.Invalidate("k")

	// A read arriving after the write must not park on the stale
	// flight — it runs its own fetch even though the old leader is
	// still blocked.
	post, shared, err := g.Do("k", func() (Value, error) {
		return Value{Data: []byte("new"), Version: 2}, nil
	})
	if err != nil || shared {
		t.Fatalf("post-write Do: err=%v shared=%v, want a fresh fetch", err, shared)
	}
	if string(post.Data) != "new" {
		t.Fatalf("post-write Do returned %q, want \"new\"", post.Data)
	}

	close(release)
	wg.Wait()
	if string(leaderV.Data) != "old" {
		t.Fatalf("stale leader got %q, want \"old\"", leaderV.Data)
	}
	if preShared && string(preV.Data) != "old" {
		t.Fatalf("pre-write waiter got %q, want the leader's \"old\"", preV.Data)
	}

	// The superseded flight's completion must not have torn down live
	// state: a fresh sequential Do still works uncoalesced.
	v, shared, err := g.Do("k", func() (Value, error) {
		return Value{Data: []byte("after")}, nil
	})
	if err != nil || shared || string(v.Data) != "after" {
		t.Fatalf("Do after settle: %q shared=%v err=%v", v.Data, shared, err)
	}
}

// InvalidateAll (flush_all) must stop every key from coalescing onto
// pre-flush flights.
func TestSingleflightInvalidateAll(t *testing.T) {
	var g Group
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do("k", func() (Value, error) {
			close(started)
			<-release
			return Value{Data: []byte("old")}, nil
		})
	}()
	<-started
	g.InvalidateAll()
	v, shared, err := g.Do("k", func() (Value, error) {
		return Value{Data: []byte("new")}, nil
	})
	if err != nil || shared || string(v.Data) != "new" {
		t.Fatalf("post-flush Do: %q shared=%v err=%v, want fresh \"new\"", v.Data, shared, err)
	}
	close(release)
	wg.Wait()
}

// Sequential calls each run their own fetch (no flight lingers after
// completion).
func TestSingleflightSequential(t *testing.T) {
	var g Group
	var calls int
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() (Value, error) {
			calls++
			return Value{Data: []byte{byte(calls)}}, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if !bytes.Equal(v.Data, []byte{byte(i + 1)}) {
			t.Fatalf("call %d returned stale flight result %v", i, v.Data)
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}
