package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// TestRecoveryHookFires drives a server through the full
// healthy -> suspect -> recovered cycle and asserts the registered
// recovery hook is invoked with the server's address — this is the
// signal the scrubber uses to kick an off-schedule anti-entropy cycle.
func TestRecoveryHookFires(t *testing.T) {
	netem := transport.NewNetem(transport.NewInproc(transport.Shape{}))
	p := NewPool(netem,
		WithFailureThreshold(3),
		WithProbeBackoff(10*time.Millisecond, 50*time.Millisecond))
	defer p.Close()

	var mu sync.Mutex
	var fired []string
	p.SetRecoveryHook(func(addr string) {
		mu.Lock()
		fired = append(fired, addr)
		mu.Unlock()
	})

	// Nothing listens on "flap" yet: trip the failure threshold.
	for i := 0; i < 3; i++ {
		if _, err := p.Send("flap", &wire.Request{Op: wire.OpPing, Key: "k"}); !errors.Is(err, ErrServerDown) {
			t.Fatalf("failure %d: got %v", i, err)
		}
	}
	if !p.Suspect("flap") {
		t.Fatal("server not suspect after threshold consecutive failures")
	}
	mu.Lock()
	early := len(fired)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("recovery hook fired %d times before any recovery", early)
	}

	// Bring the server up; a probe heals it and must fire the hook.
	startEcho(t, netem, "flap")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Roundtrip("flap", &wire.Request{Op: wire.OpPing, Key: "k"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("suspect server never recovered through probes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != "flap" {
		t.Fatalf("recovery hook calls = %q, want exactly [flap]", fired)
	}
}

// TestRecoveryHookNotCalledWhenUnset is a guard against nil-func
// panics on the call-completion path.
func TestRecoveryHookNotCalledWhenUnset(t *testing.T) {
	netem := transport.NewNetem(transport.NewInproc(transport.Shape{}))
	p := NewPool(netem,
		WithFailureThreshold(2),
		WithProbeBackoff(5*time.Millisecond, 20*time.Millisecond))
	defer p.Close()

	for i := 0; i < 2; i++ {
		_, _ = p.Send("ghost", &wire.Request{Op: wire.OpPing, Key: "k"})
	}
	startEcho(t, netem, "ghost")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Roundtrip("ghost", &wire.Request{Op: wire.OpPing, Key: "k"}); err == nil {
			return // recovered without a hook — no panic is the assertion
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
