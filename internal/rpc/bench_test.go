package rpc

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// startBenchEcho is a self-contained echo server for benchmarks (kept
// separate from the test helper so the file can be run against older
// revisions for before/after comparisons).
func startBenchEcho(b *testing.B, network transport.Network, addr string) {
	b.Helper()
	l, err := network.Listen(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReaderSize(conn, 256<<10)
				var mu sync.Mutex
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					mu.Lock()
					err = wire.WriteResponse(conn, &wire.Response{
						ID: req.ID, Status: wire.StatusOK, Value: req.Value,
					})
					mu.Unlock()
					if err != nil {
						return
					}
				}
			}()
		}
	}()
}

var rpcBenchSizes = []int{1 << 10, 64 << 10, 1 << 20}

// releaseBench returns a response's pooled frame body to its pool.
// When this file is run against revisions predating response pooling
// for a before/after comparison, replace the body with a no-op.
func releaseBench(r *wire.Response) { r.Release() }

// BenchmarkRoundtrip measures one blocking request/response echo —
// the client Set/Get wire path without codec or placement logic.
func BenchmarkRoundtrip(b *testing.B) {
	for _, size := range rpcBenchSizes {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			n := transport.NewInproc(transport.Shape{})
			startBenchEcho(b, n, "echo")
			p := NewPool(n)
			defer p.Close()
			value := bytes.Repeat([]byte{0xA5}, size)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				resp, err := p.Roundtrip("echo", &wire.Request{Op: wire.OpSet, Key: "bench", Value: value})
				if err != nil {
					b.Fatal(err)
				}
				releaseBench(resp)
			}
		})
	}
}

// BenchmarkInFlightWindow keeps an ARPE-style window of non-blocking
// calls open on one connection — the pattern the batched frame writer
// coalesces.
func BenchmarkInFlightWindow(b *testing.B) {
	const window = 32
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			n := transport.NewInproc(transport.Shape{})
			startBenchEcho(b, n, "echo")
			p := NewPool(n)
			defer p.Close()
			value := bytes.Repeat([]byte{0xA5}, size)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			calls := make([]*Call, 0, window)
			for i := 0; i < b.N; i++ {
				call, err := p.Send("echo", &wire.Request{Op: wire.OpSet, Key: "bench", Value: value})
				if err != nil {
					b.Fatal(err)
				}
				calls = append(calls, call)
				if len(calls) == window {
					for _, c := range calls {
						resp, err := c.Wait()
						if err != nil {
							b.Fatal(err)
						}
						releaseBench(resp)
					}
					calls = calls[:0]
				}
			}
			for _, c := range calls {
				resp, err := c.Wait()
				if err != nil {
					b.Fatal(err)
				}
				releaseBench(resp)
			}
		})
	}
}
