package rpc

import (
	"bufio"
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// waitBalance polls until every buffer leased from p has been returned
// (some releases run on writer/reader goroutines after the call
// completes) or fails after a deadline.
func waitBalance(t *testing.T, p *bufpool.Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Gets == st.Puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool lease imbalance: %d gets vs %d puts", st.Gets, st.Puts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaseBalanceSuccessPath(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	pool := bufpool.New()
	p := NewPool(n, WithFramePool(pool))
	defer p.Close()

	for _, size := range []int{0, 100, 64 << 10, 1 << 20} {
		value := bytes.Repeat([]byte{0x5A}, size)
		resp, err := p.Roundtrip("echo", &wire.Request{Op: wire.OpSet, Key: "k", Value: value})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Value, value) {
			t.Fatalf("size %d: echoed value mismatch", size)
		}
		resp.Release()
	}
	waitBalance(t, pool)
}

func TestLeaseBalanceValuePoolTransfer(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	pool := bufpool.New()
	p := NewPool(n, WithFramePool(pool))
	defer p.Close()

	// Both an inlined (small) and a vectored (large) leased value must
	// flow back to the pool through the frame writer.
	for _, size := range []int{64, 512 << 10} {
		value := pool.GetRaw(size)
		resp, err := p.Roundtrip("echo", &wire.Request{
			Op: wire.OpSetChunk, Key: "k", Value: value, ValuePool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	waitBalance(t, pool)
}

func TestLeaseBalanceSendFailure(t *testing.T) {
	pool := bufpool.New()
	p := NewPool(transport.NewInproc(transport.Shape{}), WithFramePool(pool))
	defer p.Close()

	// Every failed send — dial errors first, then suspect fast-fails
	// once the failure threshold trips — must release the transferred
	// value lease.
	for i := 0; i < DefaultFailureThreshold+3; i++ {
		value := pool.GetRaw(1024)
		_, err := p.Send("nobody-home", &wire.Request{
			Op: wire.OpSet, Key: "k", Value: value, ValuePool: pool,
		})
		if err == nil {
			t.Fatal("send to unreachable server succeeded")
		}
	}
	waitBalance(t, pool)
}

// startMute runs a server that reads requests and answers only after
// delay — long past the client deadline, so responses arrive late.
func startMute(t *testing.T, network transport.Network, addr string, delay time.Duration) {
	t.Helper()
	l, err := network.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				var mu sync.Mutex
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					go func() {
						time.Sleep(delay)
						mu.Lock()
						defer mu.Unlock()
						_ = wire.WriteResponse(conn, &wire.Response{ID: req.ID, Status: wire.StatusOK,
							Value: bytes.Repeat([]byte{1}, 4096)})
					}()
				}
			}()
		}
	}()
}

func TestLeaseBalanceTimeoutThenLateResponse(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startMute(t, n, "slow", 100*time.Millisecond)
	pool := bufpool.New()
	p := NewPool(n, WithFramePool(pool))
	defer p.Close()

	value := pool.GetRaw(2048)
	call, err := p.SendTimeout("slow", &wire.Request{
		Op: wire.OpSet, Key: "k", Value: value, ValuePool: pool,
	}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	// The late response's pooled body must be released by the read
	// loop once it finds nobody waiting.
	waitBalance(t, pool)
}

func TestLeaseBalanceConnectionTeardown(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startMute(t, n, "mute", time.Hour)
	pool := bufpool.New()
	p := NewPool(n, WithFramePool(pool))

	calls := make([]*Call, 0, 8)
	for i := 0; i < 8; i++ {
		value := pool.GetRaw(8192)
		call, err := p.Send("mute", &wire.Request{
			Op: wire.OpSet, Key: "k", Value: value, ValuePool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	p.Close() // tears the connection down with calls in flight
	for _, call := range calls {
		if _, err := call.Wait(); err == nil {
			t.Fatal("call survived pool close")
		}
	}
	waitBalance(t, pool)
}
