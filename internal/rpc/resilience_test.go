package rpc

import (
	"bufio"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// startStall runs a server that accepts connections and reads requests
// but never responds — the failure mode of a hung process.
func startStall(t *testing.T, network transport.Network, addr string) {
	t.Helper()
	l, err := network.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := wire.ReadRequest(br); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func TestCallTimeout(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startStall(t, n, "hung")
	const timeout = 50 * time.Millisecond
	p := NewPool(n, WithCallTimeout(timeout))
	defer p.Close()
	start := time.Now()
	call, err := p.Send("hung", &wire.Request{Op: wire.OpPing, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	} else if !IsUnavailable(err) {
		t.Fatal("ErrTimeout must satisfy IsUnavailable")
	} else if errors.Is(err, ErrServerDown) {
		t.Fatal("ErrTimeout must not wrap ErrServerDown (writes must not fail over on it)")
	}
	if elapsed := time.Since(start); elapsed > 20*timeout {
		t.Fatalf("timed-out call returned after %v", elapsed)
	}
}

func TestSendTimeoutOverridesDefault(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startStall(t, n, "hung")
	// No pool-level deadline: only the per-call override bounds it.
	p := NewPool(n)
	defer p.Close()
	call, err := p.SendTimeout("hung", &wire.Request{Op: wire.OpPing, Key: "k"}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

// TestLateResponseDoesNotCompleteLaterCall: a response arriving after
// its call's deadline must be dropped, not delivered to the timed-out
// call nor to any later call on the same connection.
func TestLateResponseDoesNotCompleteLaterCall(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	l, err := n.Listen("slow-once")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var served atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					if served.Add(1) == 1 {
						// First request: answer long after the caller's
						// deadline.
						time.Sleep(150 * time.Millisecond)
					}
					_ = wire.WriteResponse(conn, &wire.Response{
						ID: req.ID, Status: wire.StatusOK, Value: req.Value,
					})
				}
			}()
		}
	}()

	// High failure threshold: the timeout must not suspect the server
	// or drop the connection, so the late response really does arrive
	// on the same conn the second call uses.
	p := NewPool(n, WithFailureThreshold(100))
	defer p.Close()

	first, err := p.SendTimeout("slow-once", &wire.Request{
		Op: wire.OpGet, Key: "k", Value: []byte("first"),
	}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first call: got %v, want ErrTimeout", err)
	}

	resp, err := p.RoundtripTimeout("slow-once", &wire.Request{
		Op: wire.OpGet, Key: "k", Value: []byte("second"),
	}, 2*time.Second)
	if err != nil {
		t.Fatalf("second call: %v", err)
	}
	if string(resp.Value) != "second" {
		t.Fatalf("second call got %q — late first response leaked into a later call", resp.Value)
	}
	// The late response must not have mutated the completed first call.
	if r, err := first.Wait(); !errors.Is(err, ErrTimeout) || r != nil {
		t.Fatalf("first call changed after completion: resp=%v err=%v", r, err)
	}
}

func TestSuspectFailsFastAndProbesRecover(t *testing.T) {
	netem := transport.NewNetem(transport.NewInproc(transport.Shape{}))
	p := NewPool(netem,
		WithFailureThreshold(3),
		WithProbeBackoff(10*time.Millisecond, 50*time.Millisecond))
	defer p.Close()

	// Nothing is listening on "flap": every dial fails.
	for i := 0; i < 3; i++ {
		if _, err := p.Send("flap", &wire.Request{Op: wire.OpPing, Key: "k"}); !errors.Is(err, ErrServerDown) {
			t.Fatalf("failure %d: got %v", i, err)
		}
	}
	if !p.Suspect("flap") {
		t.Fatal("server not suspect after threshold consecutive failures")
	}

	// While suspect and before the probe window opens, requests fail
	// fast without a dial.
	dials := netem.DialCount("flap")
	for i := 0; i < 10; i++ {
		if _, err := p.Send("flap", &wire.Request{Op: wire.OpPing, Key: "k"}); !errors.Is(err, ErrServerDown) {
			t.Fatalf("suspect send: got %v", err)
		}
	}
	if got := netem.DialCount("flap"); got != dials {
		t.Fatalf("suspect server dialed %d more times during the fast-fail window", got-dials)
	}

	// Bring the server up; a probe admitted after the window heals it.
	startEcho(t, netem, "flap")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Roundtrip("flap", &wire.Request{Op: wire.OpPing, Key: "k"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("suspect server never recovered through probes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.Suspect("flap") {
		t.Fatal("server still suspect after a successful probe")
	}
}

func TestHealthProbeWindow(t *testing.T) {
	h := &health{}
	base, max := 20*time.Millisecond, 80*time.Millisecond
	boom := errors.New("boom")

	if toSuspect, _ := h.observe(boom, 3, base); toSuspect {
		t.Fatal("single failure must not suspect")
	}
	if h.snapshot() != StateHealthy {
		t.Fatal("below threshold: must stay healthy")
	}
	h.observe(boom, 3, base)
	if toSuspect, _ := h.observe(boom, 3, base); !toSuspect {
		t.Fatal("threshold failure must report the suspect transition")
	}
	if h.snapshot() != StateSuspect {
		t.Fatal("at threshold: must be suspect")
	}

	// Exactly one request is admitted per probe window.
	now := h.nextProbe
	if !h.admit(now, base, max) {
		t.Fatal("probe not admitted once the window opened")
	}
	if h.admit(now, base, max) {
		t.Fatal("second request admitted inside the same probe window")
	}
	// The backoff doubles but stays capped.
	if h.probeWait > max {
		t.Fatalf("probe backoff %v exceeds cap %v", h.probeWait, max)
	}

	// A success heals the tracker completely and reports the recovery.
	if _, recovered := h.observe(nil, 3, base); !recovered {
		t.Fatal("successful probe of a suspect server must report recovery")
	}
	if h.snapshot() != StateHealthy {
		t.Fatal("success must reset to healthy")
	}
	if !h.admit(now, base, max) {
		t.Fatal("healthy server must admit freely")
	}
	if toSuspect, recovered := h.observe(boom, 3, base); toSuspect || recovered {
		t.Fatal("failure streak must restart after recovery")
	}
}

func TestHealthStateString(t *testing.T) {
	if StateHealthy.String() != "healthy" || StateSuspect.String() != "suspect" {
		t.Fatalf("got %q/%q", StateHealthy, StateSuspect)
	}
}
