// Package rpc provides the multiplexed request/response machinery both
// sides of the system share: the key-value client uses it to talk to
// servers, and servers use it to talk to their peers for the
// server-side encode/decode schemes.
//
// One connection is maintained per remote address. Requests are framed
// with package wire and correlated by ID, so many operations can be in
// flight on a single connection — the transport-level analogue of the
// paper's non-blocking RDMA verbs.
package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"sync"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// ErrServerDown is returned when the remote cannot be dialed or the
// connection fails mid-call. Callers treat it as a node failure and
// fall back to replicas or parity chunks.
var ErrServerDown = errors.New("rpc: server down")

// Call is a pending request. Exactly one of Resp/Err is set once Done
// is closed.
type Call struct {
	done chan struct{}
	resp *wire.Response
	err  error
}

func newCall() *Call { return &Call{done: make(chan struct{})} }

// Done returns a channel closed when the call completes.
func (c *Call) Done() <-chan struct{} { return c.done }

// Ready reports whether the call has completed without blocking.
func (c *Call) Ready() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the call completes and returns its response.
func (c *Call) Wait() (*wire.Response, error) {
	<-c.done
	return c.resp, c.err
}

func (c *Call) complete(resp *wire.Response, err error) {
	c.resp, c.err = resp, err
	close(c.done)
}

// Pool manages one multiplexed connection per remote address. It is
// safe for concurrent use.
type Pool struct {
	network transport.Network

	mu     sync.Mutex
	conns  map[string]*muxConn
	closed bool
}

// NewPool returns a Pool dialing through network.
func NewPool(network transport.Network) *Pool {
	return &Pool{network: network, conns: make(map[string]*muxConn)}
}

// Send issues req to addr and returns the pending Call. Dial happens
// lazily; a broken connection is dropped so the next Send redials.
func (p *Pool) Send(addr string, req *wire.Request) (*Call, error) {
	mc, err := p.conn(addr)
	if err != nil {
		return nil, err
	}
	call, err := mc.send(req)
	if err != nil {
		p.drop(addr, mc)
		return nil, fmt.Errorf("%w: %s: %v", ErrServerDown, addr, err)
	}
	return call, nil
}

// Roundtrip is Send followed by Wait, with server status mapped to an
// error via Response.Err; the response is returned even on status
// errors so callers can inspect metadata.
func (p *Pool) Roundtrip(addr string, req *wire.Request) (*wire.Response, error) {
	call, err := p.Send(addr, req)
	if err != nil {
		return nil, err
	}
	resp, err := call.Wait()
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

func (p *Pool) conn(addr string) (*muxConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, transport.ErrClosed
	}
	if mc, ok := p.conns[addr]; ok && !mc.broken() {
		return mc, nil
	}
	raw, err := p.network.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrServerDown, addr, err)
	}
	mc := newMuxConn(raw)
	p.conns[addr] = mc
	return mc, nil
}

// drop removes mc from the pool if it is still the registered
// connection for addr.
func (p *Pool) drop(addr string, mc *muxConn) {
	p.mu.Lock()
	if p.conns[addr] == mc {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	mc.close(ErrServerDown)
}

// Close shuts every connection; in-flight calls fail.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make(map[string]*muxConn)
	p.closed = true
	p.mu.Unlock()
	for _, mc := range conns {
		mc.close(transport.ErrClosed)
	}
}

// muxConn multiplexes calls over one transport connection.
type muxConn struct {
	conn transport.Conn

	writeMu sync.Mutex
	bw      *bufio.Writer
	wbuf    []byte

	mu      sync.Mutex
	pending map[uint64]*Call
	nextID  uint64
	dead    bool
	deadErr error
}

func newMuxConn(conn transport.Conn) *muxConn {
	mc := &muxConn{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*Call),
	}
	go mc.readLoop()
	return mc
}

func (mc *muxConn) broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

func (mc *muxConn) send(req *wire.Request) (*Call, error) {
	call := newCall()
	mc.mu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextID++
	req.ID = mc.nextID
	mc.pending[req.ID] = call
	mc.mu.Unlock()

	mc.writeMu.Lock()
	var err error
	mc.wbuf, err = wire.AppendRequest(mc.wbuf[:0], req)
	if err == nil {
		_, err = mc.bw.Write(mc.wbuf)
		if err == nil {
			err = mc.bw.Flush()
		}
	}
	mc.writeMu.Unlock()
	if err != nil {
		mc.mu.Lock()
		delete(mc.pending, req.ID)
		mc.mu.Unlock()
		mc.close(err)
		return nil, err
	}
	return call, nil
}

func (mc *muxConn) readLoop() {
	br := bufio.NewReaderSize(mc.conn, 64<<10)
	for {
		resp, err := wire.ReadResponse(br)
		if err != nil {
			mc.close(fmt.Errorf("%w: %v", ErrServerDown, err))
			return
		}
		mc.mu.Lock()
		call, ok := mc.pending[resp.ID]
		delete(mc.pending, resp.ID)
		mc.mu.Unlock()
		if ok {
			call.complete(resp, nil)
		}
	}
}

// close marks the connection dead and fails all pending calls.
func (mc *muxConn) close(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	pending := mc.pending
	mc.pending = make(map[uint64]*Call)
	mc.mu.Unlock()
	_ = mc.conn.Close()
	for _, call := range pending {
		call.complete(nil, err)
	}
}
