// Package rpc provides the multiplexed request/response machinery both
// sides of the system share: the key-value client uses it to talk to
// servers, and servers use it to talk to their peers for the
// server-side encode/decode schemes.
//
// One connection is maintained per remote address. Requests are framed
// with package wire and correlated by ID, so many operations can be in
// flight on a single connection — the transport-level analogue of the
// paper's non-blocking RDMA verbs.
//
// The pool is also the failure detector: every call can carry a
// deadline (completed with ErrTimeout by a timer when the response
// does not arrive), and a per-server health tracker turns consecutive
// failures into a "suspect" state in which requests fail fast and only
// periodic probes — spaced with exponential backoff and jitter — are
// let through to detect recovery. Callers therefore never block
// indefinitely on a hung server and never pay a fresh dial per request
// to a known-dead one.
package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/metrics"
	"ecstore/internal/stats"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// ErrServerDown is returned when the remote cannot be dialed, the
// connection fails mid-call, or the server is suspect and not due for
// a probe. Callers treat it as a node failure and fall back to
// replicas or parity chunks.
var ErrServerDown = errors.New("rpc: server down")

// ErrTimeout is returned when a call's deadline expires before the
// response arrives. The server may still be processing the request;
// only idempotent operations are safe to retry.
var ErrTimeout = errors.New("rpc: call timed out")

// IsUnavailable reports whether err means the server did not usefully
// answer — down, suspect, or past its deadline — and a replica, parity
// chunk, or (for idempotent operations) a retry should be used instead.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrServerDown) || errors.Is(err, ErrTimeout)
}

// Call is a pending request. Exactly one of Resp/Err is set once Done
// is closed.
type Call struct {
	done chan struct{}

	mu        sync.Mutex
	completed bool
	resp      *wire.Response
	err       error
	timer     *time.Timer

	// onDone, when non-nil, observes the completion error exactly once
	// (the pool's health tracker). It is set before the call can
	// complete and never mutated afterwards.
	onDone func(error)
}

func newCall() *Call { return &Call{done: make(chan struct{})} }

// Done returns a channel closed when the call completes.
func (c *Call) Done() <-chan struct{} { return c.done }

// Ready reports whether the call has completed without blocking.
func (c *Call) Ready() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the call completes and returns its response. The
// response's Value may alias a pooled frame buffer: call
// Response.Release once done with it (copy the value first if it
// outlives the call), or let the garbage collector have it at the cost
// of a pool miss.
func (c *Call) Wait() (*wire.Response, error) {
	<-c.done
	return c.resp, c.err
}

// complete finishes the call exactly once; a late completion (a
// response racing the deadline timer, or vice versa) is dropped. It
// reports whether this completion was the one delivered — a false
// return means resp was NOT handed to the caller, so a pooled response
// must be released by whoever called complete.
func (c *Call) complete(resp *wire.Response, err error) bool {
	c.mu.Lock()
	if c.completed {
		c.mu.Unlock()
		return false
	}
	c.completed = true
	c.resp, c.err = resp, err
	timer := c.timer
	c.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	close(c.done)
	if c.onDone != nil {
		c.onDone(err)
	}
	return true
}

// arm starts the deadline timer unless the call already completed.
func (c *Call) arm(d time.Duration, expire func()) {
	c.mu.Lock()
	if !c.completed {
		c.timer = time.AfterFunc(d, expire)
	}
	c.mu.Unlock()
}

// Option configures a Pool.
type Option func(*Pool)

// WithCallTimeout sets the default per-call deadline; 0 (the initial
// default) disables deadlines. SendTimeout overrides it per call.
func WithCallTimeout(d time.Duration) Option {
	return func(p *Pool) { p.timeout = d }
}

// WithFailureThreshold sets how many consecutive failures move a
// server to the suspect state (DefaultFailureThreshold if unset).
func WithFailureThreshold(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.failThreshold = n
		}
	}
}

// WithProbeBackoff sets the bounds of the suspect-probe schedule: the
// first probe is due ~base after the suspect transition, and the
// interval doubles (with jitter) up to max.
func WithProbeBackoff(base, max time.Duration) Option {
	return func(p *Pool) {
		if base > 0 {
			p.probeBase = base
		}
		if max >= base && max > 0 {
			p.probeMax = max
		}
	}
}

// WithFramePool sets the buffer pool frames and read bodies are leased
// from. The default is bufpool.Default (shared with the erasure codec);
// a nil pool disables pooling — every frame allocates and releases are
// no-ops, useful for isolating pool bugs.
func WithFramePool(pool *bufpool.Pool) Option {
	return func(p *Pool) { p.framePool = pool }
}

// WithMetrics publishes the pool's counters into reg: calls issued,
// completions by outcome (ok / timeout / error), sends suppressed by
// the suspect fast-fail, dials and dial failures, health-state
// transitions, the number of currently suspect servers, and a
// call-latency histogram. A nil registry (the default) discards all
// of it.
func WithMetrics(reg *metrics.Registry) Option {
	return func(p *Pool) { p.reg = reg }
}

// Pool manages one multiplexed connection per remote address. It is
// safe for concurrent use.
type Pool struct {
	network       transport.Network
	timeout       time.Duration
	failThreshold int
	probeBase     time.Duration
	probeMax      time.Duration
	reg           *metrics.Registry
	framePool     *bufpool.Pool

	// Metric handles are resolved once at construction so the hot send
	// path pays one atomic op per event, not a registry lookup.
	mCalls       *metrics.Counter
	mOK          *metrics.Counter
	mTimeouts    *metrics.Counter
	mCallErrors  *metrics.Counter
	mSendErrors  *metrics.Counter
	mFailFast    *metrics.Counter
	mDials       *metrics.Counter
	mDialErrors  *metrics.Counter
	mToSuspect   *metrics.Counter
	mRecoveries  *metrics.Counter
	gSuspect     *metrics.Gauge
	hCallSeconds *stats.Histogram

	// epochSource, when set, supplies the sender's membership epoch;
	// SendTimeout stamps it onto every request that is not already
	// stamped, so all call sites — strategies, bulk batches, scans —
	// carry the epoch without threading it through each request
	// literal. Atomic: the send path must not take the pool lock.
	epochSource atomic.Pointer[func() uint64]

	mu         sync.Mutex
	conns      map[string]*muxConn
	health     map[string]*health
	onRecovery func(addr string)
	closed     bool
}

// SetEpochSource registers fn as the pool's membership-epoch supplier.
// Every subsequent request sent with a zero Epoch is stamped with
// fn()'s value at send time.
func (p *Pool) SetEpochSource(fn func() uint64) {
	p.epochSource.Store(&fn)
}

// NewPool returns a Pool dialing through network.
func NewPool(network transport.Network, opts ...Option) *Pool {
	p := &Pool{
		network:       network,
		conns:         make(map[string]*muxConn),
		health:        make(map[string]*health),
		failThreshold: DefaultFailureThreshold,
		probeBase:     DefaultProbeBase,
		probeMax:      DefaultProbeMax,
		framePool:     bufpool.Default,
	}
	for _, o := range opts {
		o(p)
	}
	p.mCalls = p.reg.Counter("ecstore_rpc_calls_total")
	p.mOK = p.reg.Counter("ecstore_rpc_ok_total")
	p.mTimeouts = p.reg.Counter("ecstore_rpc_timeouts_total")
	p.mCallErrors = p.reg.Counter("ecstore_rpc_call_errors_total")
	p.mSendErrors = p.reg.Counter("ecstore_rpc_send_errors_total")
	p.mFailFast = p.reg.Counter("ecstore_rpc_failfast_total")
	p.mDials = p.reg.Counter("ecstore_rpc_dials_total")
	p.mDialErrors = p.reg.Counter("ecstore_rpc_dial_errors_total")
	p.mToSuspect = p.reg.Counter("ecstore_rpc_suspect_transitions_total")
	p.mRecoveries = p.reg.Counter("ecstore_rpc_recoveries_total")
	p.gSuspect = p.reg.Gauge("ecstore_rpc_suspect_servers")
	p.hCallSeconds = p.reg.Histogram("ecstore_rpc_call_seconds")
	return p
}

// FramePool returns the buffer pool this pool leases frames from (nil
// when pooling is disabled). Callers building pooled request values —
// e.g. chunk payloads handed over via Request.ValuePool — should lease
// from it so buffers recycle within one pool.
func (p *Pool) FramePool() *bufpool.Pool { return p.framePool }

// Send issues req to addr and returns the pending Call under the
// pool's default deadline. Dial happens lazily; a broken connection is
// dropped so the next Send redials.
func (p *Pool) Send(addr string, req *wire.Request) (*Call, error) {
	return p.SendTimeout(addr, req, p.timeout)
}

// SendTimeout is Send with an explicit per-call deadline (0 = none).
// A suspect server that is not due for a probe fails immediately with
// an error wrapping ErrServerDown — no dial is attempted.
//
// If req.ValuePool is set, ownership of the value lease transfers to
// the rpc layer the moment SendTimeout is called: the buffer is
// released after the frame is written — or on any failure path — and
// the caller must not touch req.Value afterwards, success or not.
func (p *Pool) SendTimeout(addr string, req *wire.Request, timeout time.Duration) (*Call, error) {
	if req.Epoch == 0 {
		if src := p.epochSource.Load(); src != nil {
			req.Epoch = (*src)()
		}
	}
	h := p.healthFor(addr)
	if h != nil && !h.admit(time.Now(), p.probeBase, p.probeMax) {
		p.mFailFast.Inc()
		req.ReleaseValue()
		return nil, fmt.Errorf("%w: %s: suspect, awaiting probe", ErrServerDown, addr)
	}
	mc, err := p.conn(addr)
	if err != nil {
		p.mSendErrors.Inc()
		p.observe(addr, err)
		req.ReleaseValue()
		return nil, err
	}
	start := time.Now()
	call, err := mc.send(req, timeout, func(callErr error) {
		p.hCallSeconds.Record(time.Since(start))
		switch {
		case callErr == nil:
			p.mOK.Inc()
		case errors.Is(callErr, ErrTimeout):
			p.mTimeouts.Inc()
		default:
			p.mCallErrors.Inc()
		}
		p.observe(addr, callErr)
	})
	if err != nil {
		p.mSendErrors.Inc()
		p.drop(addr, mc)
		p.observe(addr, err)
		return nil, fmt.Errorf("%w: %s: %v", ErrServerDown, addr, err)
	}
	p.mCalls.Inc()
	return call, nil
}

// Roundtrip is Send followed by Wait, with server status mapped to an
// error via Response.Err; the response is returned even on status
// errors so callers can inspect metadata.
func (p *Pool) Roundtrip(addr string, req *wire.Request) (*wire.Response, error) {
	return p.RoundtripTimeout(addr, req, p.timeout)
}

// RoundtripTimeout is Roundtrip with an explicit per-call deadline.
func (p *Pool) RoundtripTimeout(addr string, req *wire.Request, timeout time.Duration) (*wire.Response, error) {
	call, err := p.SendTimeout(addr, req, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := call.Wait()
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// SetRecoveryHook registers fn to be called whenever a server leaves
// the suspect state (a probe of a previously failing server succeeded).
// The anti-entropy scrubber uses it to kick a repair cycle the moment a
// crashed-and-restarted server rejoins, instead of waiting out the
// periodic interval. fn runs on the call-completion path and must not
// block; hand off to a channel or goroutine for real work. A nil fn
// clears the hook.
func (p *Pool) SetRecoveryHook(fn func(addr string)) {
	p.mu.Lock()
	p.onRecovery = fn
	p.mu.Unlock()
}

// Suspect reports whether addr is currently in the suspect state.
// Placement and failover code uses it to deprioritize known-bad
// servers without issuing a request.
func (p *Pool) Suspect(addr string) bool {
	p.mu.Lock()
	h := p.health[addr]
	p.mu.Unlock()
	return h != nil && h.snapshot() == StateSuspect
}

// healthFor returns addr's health tracker, creating it on first use.
// It returns nil only after Close.
func (p *Pool) healthFor(addr string) *health {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	h, ok := p.health[addr]
	if !ok {
		h = &health{}
		p.health[addr] = h
	}
	return h
}

// observe feeds one call outcome to addr's health tracker. Pool
// shutdown is not a server failure.
func (p *Pool) observe(addr string, err error) {
	if err != nil && errors.Is(err, transport.ErrClosed) {
		return
	}
	h := p.healthFor(addr)
	if h == nil {
		return
	}
	toSuspect, recovered := h.observe(err, p.failThreshold, p.probeBase)
	if recovered {
		p.mRecoveries.Inc()
		p.gSuspect.Add(-1)
		p.mu.Lock()
		hook := p.onRecovery
		p.mu.Unlock()
		if hook != nil {
			hook(addr)
		}
	}
	if toSuspect {
		p.mToSuspect.Inc()
		p.gSuspect.Add(1)
		// Freshly suspect: drop the cached connection (it may be hung)
		// so the next probe redials from scratch.
		p.mu.Lock()
		mc := p.conns[addr]
		delete(p.conns, addr)
		p.mu.Unlock()
		if mc != nil {
			mc.close(fmt.Errorf("%w: %s: suspect", ErrServerDown, addr))
		}
	}
}

func (p *Pool) conn(addr string) (*muxConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, transport.ErrClosed
	}
	if mc, ok := p.conns[addr]; ok && !mc.broken() {
		return mc, nil
	}
	p.mDials.Inc()
	raw, err := p.network.Dial(addr)
	if err != nil {
		p.mDialErrors.Inc()
		return nil, fmt.Errorf("%w: %s: %v", ErrServerDown, addr, err)
	}
	mc := newMuxConn(raw, p.framePool)
	p.conns[addr] = mc
	return mc, nil
}

// drop removes mc from the pool if it is still the registered
// connection for addr.
func (p *Pool) drop(addr string, mc *muxConn) {
	p.mu.Lock()
	if p.conns[addr] == mc {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	mc.close(ErrServerDown)
}

// Close shuts every connection; in-flight calls fail.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make(map[string]*muxConn)
	p.health = make(map[string]*health)
	p.closed = true
	p.mu.Unlock()
	for _, mc := range conns {
		mc.close(transport.ErrClosed)
	}
}

// muxConn multiplexes calls over one transport connection. Outbound
// frames are encoded outside any lock and handed to a per-connection
// FrameQueue whose writer goroutine drains everything queued since its
// last flush and writes the batch as one vectored write — a full
// ARPE-style window of in-flight chunk operations costs a handful of
// syscalls, not one flush per frame.
type muxConn struct {
	conn transport.Conn
	fq   *wire.FrameQueue
	pool *bufpool.Pool

	mu      sync.Mutex
	pending map[uint64]*Call
	nextID  uint64
	dead    bool
	deadErr error
}

// sendQueueDepth bounds the number of encoded-but-unwritten frames per
// connection; Enqueue blocks (backpressure) beyond it. Sized to hold a
// few full RS stripes' worth of chunk writes.
const sendQueueDepth = 256

func newMuxConn(conn transport.Conn, pool *bufpool.Pool) *muxConn {
	mc := &muxConn{
		conn:    conn,
		pool:    pool,
		pending: make(map[uint64]*Call),
	}
	mc.fq = wire.NewFrameQueue(conn, sendQueueDepth, pool, func(err error) {
		mc.close(fmt.Errorf("%w: %v", ErrServerDown, err))
	})
	go mc.readLoop()
	return mc
}

func (mc *muxConn) broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

func (mc *muxConn) send(req *wire.Request, timeout time.Duration, onDone func(error)) (*Call, error) {
	call := newCall()
	call.onDone = onDone
	mc.mu.Lock()
	if mc.dead {
		err := mc.deadErr
		mc.mu.Unlock()
		req.ReleaseValue()
		return nil, err
	}
	mc.nextID++
	req.ID = mc.nextID
	mc.pending[req.ID] = call
	mc.mu.Unlock()

	// Encode outside every lock so one big value can't stall unrelated
	// calls; the frame either reaches the queue (which then owns it and
	// any transferred value lease) or is released by the failing step.
	frame, err := wire.EncodeRequestFrame(mc.pool, req)
	if err == nil {
		err = mc.fq.Enqueue(frame)
	}
	if err != nil {
		mc.mu.Lock()
		delete(mc.pending, req.ID)
		mc.mu.Unlock()
		if !errors.Is(err, wire.ErrFrameTooLarge) {
			// Write-path errors kill the connection; an oversized
			// request is the caller's problem, not the link's.
			mc.close(err)
		}
		return nil, err
	}
	if timeout > 0 {
		id := req.ID
		call.arm(timeout, func() {
			// Remove the pending entry first so a response arriving
			// after the deadline cannot complete a dead call.
			mc.mu.Lock()
			delete(mc.pending, id)
			mc.mu.Unlock()
			call.complete(nil, fmt.Errorf("%w after %v", ErrTimeout, timeout))
		})
	}
	return call, nil
}

func (mc *muxConn) readLoop() {
	br := bufio.NewReaderSize(mc.conn, 64<<10)
	for {
		resp, err := wire.ReadResponsePooled(br, mc.pool)
		if err != nil {
			mc.close(fmt.Errorf("%w: %v", ErrServerDown, err))
			return
		}
		mc.mu.Lock()
		call, ok := mc.pending[resp.ID]
		delete(mc.pending, resp.ID)
		mc.mu.Unlock()
		// A response nobody is waiting for (late arrival after a
		// deadline, or a lost race with the timer inside complete) must
		// return its leased frame body itself.
		if !ok || !call.complete(resp, nil) {
			resp.Release()
		}
	}
}

// close marks the connection dead and fails all pending calls.
func (mc *muxConn) close(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	pending := mc.pending
	mc.pending = make(map[uint64]*Call)
	mc.mu.Unlock()
	// Closing the conn unblocks any in-flight batch write; the queue
	// then drains, releasing every still-owned frame buffer.
	_ = mc.conn.Close()
	_ = mc.fq.Close()
	for _, call := range pending {
		call.complete(nil, err)
	}
}
