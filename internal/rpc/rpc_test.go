package rpc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// startEcho runs a minimal wire-speaking server that echoes request
// values back, with optional artificial reordering by responding to
// even IDs after odd ones.
func startEcho(t *testing.T, network transport.Network, addr string) {
	t.Helper()
	l, err := network.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				var mu sync.Mutex
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					go func() {
						mu.Lock()
						defer mu.Unlock()
						_ = wire.WriteResponse(conn, &wire.Response{
							ID: req.ID, Status: wire.StatusOK, Value: req.Value,
						})
					}()
				}
			}()
		}
	}()
}

func TestRoundtrip(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	p := NewPool(n)
	defer p.Close()
	resp, err := p.Roundtrip("echo", &wire.Request{Op: wire.OpSet, Key: "k", Value: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Value) != "hello" {
		t.Fatalf("value %q", resp.Value)
	}
}

func TestManyInFlight(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	p := NewPool(n)
	defer p.Close()
	const ops = 200
	calls := make([]*Call, ops)
	for i := range calls {
		call, err := p.Send("echo", &wire.Request{
			Op: wire.OpSet, Key: "k", Value: []byte(fmt.Sprintf("v%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%d", i); string(resp.Value) != want {
			t.Fatalf("call %d: got %q (response correlation broken)", i, resp.Value)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	p := NewPool(n)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				want := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := p.Roundtrip("echo", &wire.Request{Op: wire.OpSet, Key: "k", Value: want})
				if err != nil {
					t.Errorf("roundtrip: %v", err)
					return
				}
				if !bytes.Equal(resp.Value, want) {
					t.Errorf("got %q want %q", resp.Value, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDialFailure(t *testing.T) {
	p := NewPool(transport.NewInproc(transport.Shape{}))
	defer p.Close()
	if _, err := p.Send("nobody", &wire.Request{Op: wire.OpPing, Key: "k"}); !errors.Is(err, ErrServerDown) {
		t.Fatalf("got %v", err)
	}
}

func TestServerDiesMidCall(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	l, err := n.Listen("dead")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	p := NewPool(n)
	defer p.Close()
	call, err := p.Send("dead", &wire.Request{Op: wire.OpPing, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server side without responding.
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(time.Second):
		t.Fatal("no connection accepted")
	}
	if _, err := call.Wait(); !errors.Is(err, ErrServerDown) {
		t.Fatalf("got %v", err)
	}
	// The broken connection must be dropped so a later Send redials.
	l.Close()
	startEcho(t, n, "dead")
	if _, err := p.Roundtrip("dead", &wire.Request{Op: wire.OpPing, Key: "k"}); err != nil {
		t.Fatalf("redial: %v", err)
	}
}

func TestPoolClose(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	startEcho(t, n, "echo")
	p := NewPool(n)
	if _, err := p.Roundtrip("echo", &wire.Request{Op: wire.OpPing, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Send("echo", &wire.Request{Op: wire.OpPing, Key: "k"}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestCallReady(t *testing.T) {
	c := newCall()
	if c.Ready() {
		t.Fatal("fresh call is ready")
	}
	c.complete(&wire.Response{Status: wire.StatusOK}, nil)
	if !c.Ready() {
		t.Fatal("completed call not ready")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed")
	}
}

func TestRoundtripMapsStatusErrors(t *testing.T) {
	n := transport.NewInproc(transport.Shape{})
	l, err := n.Listen("nf")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			req, err := wire.ReadRequest(br)
			if err != nil {
				return
			}
			_ = wire.WriteResponse(conn, &wire.Response{ID: req.ID, Status: wire.StatusNotFound})
		}
	}()
	p := NewPool(n)
	defer p.Close()
	if _, err := p.Roundtrip("nf", &wire.Request{Op: wire.OpGet, Key: "k"}); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}
