package rpc

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Health-tracker defaults. The thresholds are deliberately small: the
// cost of a false suspect is one probe round trip, while the cost of a
// missed failure is a full call deadline per request.
const (
	// DefaultFailureThreshold is how many consecutive failures move a
	// server from healthy to suspect.
	DefaultFailureThreshold = 3
	// DefaultProbeBase is the delay before the first recovery probe of
	// a suspect server.
	DefaultProbeBase = 20 * time.Millisecond
	// DefaultProbeMax caps the probe backoff so recovery of a
	// long-dead server is still noticed within ~a second of traffic.
	DefaultProbeMax = time.Second
)

// HealthState is the tracker's view of one server.
type HealthState uint8

const (
	// StateHealthy lets requests flow normally.
	StateHealthy HealthState = iota
	// StateSuspect fails requests fast; only probes go through.
	StateSuspect
)

// String returns the state mnemonic.
func (s HealthState) String() string {
	if s == StateSuspect {
		return "suspect"
	}
	return "healthy"
}

// health is the per-server failure tracker: a consecutive-failure
// counter that opens a circuit (suspect) at a threshold, and a
// probe-on-next-use schedule with exponential backoff + jitter that
// closes it again when the server answers.
type health struct {
	mu        sync.Mutex
	state     HealthState
	fails     int
	probeWait time.Duration // next backoff step
	nextProbe time.Time
}

// snapshot returns the current state.
func (h *health) snapshot() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// admit reports whether a request may proceed. For a suspect server it
// grants at most one request per probe window — the probe — and pushes
// the next window out with doubled, jittered backoff so a long-dead
// server costs ever less to keep checking.
func (h *health) admit(now time.Time, base, max time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == StateHealthy {
		return true
	}
	if now.Before(h.nextProbe) {
		return false
	}
	if h.probeWait <= 0 {
		h.probeWait = base
	}
	h.nextProbe = now.Add(jitter(h.probeWait))
	if h.probeWait < max {
		h.probeWait *= 2
		if h.probeWait > max {
			h.probeWait = max
		}
	}
	return true
}

// observe records one call outcome and reports state transitions:
// toSuspect when the server just crossed the failure threshold (the
// caller then drops its cached connection so the next probe redials),
// recovered when a probe of a suspect server succeeded and the circuit
// closed again.
func (h *health) observe(err error, threshold int, base time.Duration) (toSuspect, recovered bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		recovered = h.state == StateSuspect
		h.state = StateHealthy
		h.fails = 0
		h.probeWait = 0
		return false, recovered
	}
	h.fails++
	if h.state == StateHealthy && h.fails >= threshold {
		h.state = StateSuspect
		h.probeWait = base
		h.nextProbe = time.Now().Add(jitter(base))
		return true, false
	}
	return false, false
}

// jitter spreads d over [d/2, 3d/2) so probes from many clients (or
// retries from many goroutines) do not synchronize into thundering
// herds against a recovering server.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + rand.N(d)
}
