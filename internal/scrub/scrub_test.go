package scrub_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/metrics"
	"ecstore/internal/scrub"
)

// stubClient scripts the daemon's three dependencies so control-flow
// paths (fallbacks, error accounting) are testable without a cluster.
type stubClient struct {
	mu      sync.Mutex
	keys    []string
	scanErr error
	verify  func(key string) (bool, error)
	repair  func(key string) (core.RepairReport, error)

	verified []string
	repaired []string

	recoveredFn func(addr string)
}

func (s *stubClient) ScanKeys() ([]string, error) {
	if s.scanErr != nil {
		return nil, s.scanErr
	}
	return append([]string(nil), s.keys...), nil
}

func (s *stubClient) Verify(key string) (bool, error) {
	s.mu.Lock()
	s.verified = append(s.verified, key)
	s.mu.Unlock()
	if s.verify == nil {
		return true, nil
	}
	return s.verify(key)
}

func (s *stubClient) Repair(key string) (core.RepairReport, error) {
	s.mu.Lock()
	s.repaired = append(s.repaired, key)
	s.mu.Unlock()
	if s.repair == nil {
		return core.RepairReport{}, nil
	}
	return s.repair(key)
}

func (s *stubClient) OnServerRecovered(fn func(addr string)) { s.recoveredFn = fn }

func newDaemon(t *testing.T, cfg scrub.Config) *scrub.Daemon {
	t.Helper()
	d, err := scrub.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRequiresClient(t *testing.T) {
	if _, err := scrub.New(scrub.Config{}); err == nil {
		t.Fatal("New accepted a nil client")
	}
}

func TestRunCycleScanError(t *testing.T) {
	boom := errors.New("cluster unreachable")
	reg := metrics.NewRegistry()
	d := newDaemon(t, scrub.Config{Client: &stubClient{scanErr: boom}, Rate: -1, Metrics: reg})
	report := d.RunCycle(nil)
	if !errors.Is(report.Err, boom) || report.Scanned != 0 {
		t.Fatalf("report %+v", report)
	}
	if got := reg.Counter("ecstore_scrub_cycles_total").Value(); got != 1 {
		t.Fatalf("cycles counter = %d", got)
	}
	if !strings.Contains(report.String(), "error") {
		t.Fatalf("report string %q hides the error", report)
	}
}

func TestRunCycleAllHealthy(t *testing.T) {
	reg := metrics.NewRegistry()
	c := &stubClient{keys: []string{"a", "b", "c"}}
	d := newDaemon(t, scrub.Config{Client: c, Rate: -1, Metrics: reg})
	report := d.RunCycle(nil)
	if report.Scanned != 3 || report.Healthy != 3 || report.Repaired != 0 || report.Failed != 0 {
		t.Fatalf("report %+v", report)
	}
	if len(c.repaired) != 0 {
		t.Fatalf("healthy keys were repaired: %q", c.repaired)
	}
	if got := reg.Counter("ecstore_scrub_keys_healthy_total").Value(); got != 3 {
		t.Fatalf("healthy counter = %d", got)
	}
}

// TestScrubKeyOutcomes drives every verify/repair branch of scrubKey
// through RunCycle with a single scripted key.
func TestScrubKeyOutcomes(t *testing.T) {
	notFound := core.ErrNotFound
	unsupported := errors.New("core: resilience mode 2 does not support verify")
	for name, tc := range map[string]struct {
		verify  func(string) (bool, error)
		repair  func(string) (core.RepairReport, error)
		want    scrub.Report
		repairs int
	}{
		"verify-healthy": {
			verify: func(string) (bool, error) { return true, nil },
			want:   scrub.Report{Scanned: 1, Healthy: 1},
		},
		"deleted-between-scan-and-verify": {
			verify: func(string) (bool, error) { return false, notFound },
			want:   scrub.Report{Scanned: 1, Healthy: 1},
		},
		"degraded-then-repaired": {
			verify: func(string) (bool, error) { return false, nil },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{Checked: 5, Missing: 2, Rewritten: 2}, nil
			},
			want:    scrub.Report{Scanned: 1, Repaired: 1, Rewritten: 2},
			repairs: 1,
		},
		"verify-unsupported-falls-back-to-repair": {
			verify: func(string) (bool, error) { return false, unsupported },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{Checked: 3, Missing: 1, Rewritten: 1}, nil
			},
			want:    scrub.Report{Scanned: 1, Repaired: 1, Rewritten: 1},
			repairs: 1,
		},
		"verify-pessimistic-but-probe-healthy": {
			verify: func(string) (bool, error) { return false, nil },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{Checked: 5}, nil
			},
			want:    scrub.Report{Scanned: 1, Healthy: 1},
			repairs: 1,
		},
		"deleted-between-verify-and-repair": {
			verify: func(string) (bool, error) { return false, nil },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{}, notFound
			},
			want:    scrub.Report{Scanned: 1, Healthy: 1},
			repairs: 1,
		},
		"repair-error": {
			verify: func(string) (bool, error) { return false, nil },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{}, core.ErrUnavailable
			},
			want:    scrub.Report{Scanned: 1, Failed: 1},
			repairs: 1,
		},
		"partial-repair-counts-work-and-fails": {
			verify: func(string) (bool, error) { return false, nil },
			repair: func(string) (core.RepairReport, error) {
				return core.RepairReport{Checked: 5, Missing: 3, Rewritten: 1}, nil
			},
			want:    scrub.Report{Scanned: 1, Repaired: 1, Rewritten: 1, Failed: 1},
			repairs: 1,
		},
	} {
		t.Run(name, func(t *testing.T) {
			c := &stubClient{keys: []string{"k"}, verify: tc.verify, repair: tc.repair}
			d := newDaemon(t, scrub.Config{Client: c, Rate: -1})
			got := d.RunCycle(nil)
			got.Duration = 0
			if got != tc.want {
				t.Fatalf("report %+v, want %+v", got, tc.want)
			}
			if len(c.repaired) != tc.repairs {
				t.Fatalf("repair called %d times, want %d", len(c.repaired), tc.repairs)
			}
		})
	}
}

func TestRatePacing(t *testing.T) {
	c := &stubClient{keys: []string{"a", "b", "c", "d", "e", "f"}}
	// 100 keys/sec: the 5 inter-key gaps after the first key are due at
	// 10ms spacing, so the cycle cannot complete in under ~50ms.
	d := newDaemon(t, scrub.Config{Client: c, Rate: 100})
	report := d.RunCycle(nil)
	if report.Scanned != 6 {
		t.Fatalf("report %+v", report)
	}
	if report.Duration < 40*time.Millisecond {
		t.Fatalf("rate-limited cycle finished in %v, want >= ~50ms", report.Duration)
	}

	// Unthrottled, the same keyspace is effectively instant.
	d = newDaemon(t, scrub.Config{Client: c, Rate: -1})
	if r := d.RunCycle(nil); r.Duration > 5*time.Second {
		t.Fatalf("unthrottled cycle took %v", r.Duration)
	}
}

func TestRunCycleCancel(t *testing.T) {
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	c := &stubClient{keys: keys}
	d := newDaemon(t, scrub.Config{Client: c, Rate: 50}) // 20ms per key
	cancel := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(cancel)
	}()
	report := d.RunCycle(cancel)
	if report.Scanned >= len(keys) {
		t.Fatalf("cancelled cycle scanned all %d keys", report.Scanned)
	}
	// Everything it did scan was fully processed (no leaked goroutines
	// past the barrier): scanned keys were all verified.
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.verified) != report.Scanned {
		t.Fatalf("scanned %d but verified %d", report.Scanned, len(c.verified))
	}
}

func TestDaemonKickAndRestart(t *testing.T) {
	reg := metrics.NewRegistry()
	reports := make(chan scrub.Report, 16)
	c := &stubClient{keys: []string{"a", "b"}}
	d := newDaemon(t, scrub.Config{
		Client:   c,
		Interval: -1, // no periodic timer: only kicks run cycles
		Rate:     -1,
		Metrics:  reg,
		OnCycle:  func(r scrub.Report) { reports <- r },
		Logf:     t.Logf,
	})

	// The stub implements OnServerRecovered, so New must have wired the
	// recovery hook to Kick.
	if c.recoveredFn == nil {
		t.Fatal("recovery hook not registered on a recoverable client")
	}

	d.Start()
	d.Start() // no-op on a running daemon
	d.Kick()
	select {
	case r := <-reports:
		if r.Scanned != 2 || r.Healthy != 2 {
			t.Fatalf("kicked cycle report %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("kicked cycle never completed")
	}

	// A server-recovered event also triggers a cycle.
	c.recoveredFn("srv-3")
	select {
	case <-reports:
	case <-time.After(5 * time.Second):
		t.Fatal("recovery-kicked cycle never completed")
	}

	d.Stop()
	d.Stop() // no-op on a stopped daemon
	if got := reg.Counter("ecstore_scrub_kicks_total").Value(); got < 2 {
		t.Fatalf("kicks counter = %d, want >= 2", got)
	}

	// A stopped daemon is restartable.
	d.Start()
	d.Kick()
	select {
	case <-reports:
	case <-time.After(5 * time.Second):
		t.Fatal("cycle after restart never completed")
	}
	d.Stop()
}

func TestDaemonPeriodicInterval(t *testing.T) {
	reports := make(chan scrub.Report, 16)
	c := &stubClient{keys: []string{"a"}}
	d := newDaemon(t, scrub.Config{
		Client:   c,
		Interval: 20 * time.Millisecond,
		Rate:     -1,
		OnCycle:  func(r scrub.Report) { reports <- r },
	})
	d.Start()
	defer d.Stop()
	for i := 0; i < 2; i++ {
		select {
		case <-reports:
		case <-time.After(5 * time.Second):
			t.Fatalf("periodic cycle %d never fired", i)
		}
	}
}

func TestReportString(t *testing.T) {
	r := scrub.Report{Scanned: 10, Healthy: 8, Repaired: 1, Rewritten: 3, Failed: 1, Duration: 1500 * time.Millisecond}
	s := r.String()
	for _, want := range []string{"scanned=10", "healthy=8", "repaired=1", "rewritten=3", "failed=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

// TestScrubConvergesCluster is the end-to-end check on a real cluster:
// a server crashes and rejoins empty, and one scrub cycle restores
// full redundancy for every key — erasure-coded large values and
// replicated small ones alike.
func TestScrubConvergesCluster(t *testing.T) {
	cl, err := cluster.Start(cluster.Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	c, err := core.New(core.Config{
		Network:    cl.Network(),
		Servers:    cl.Addrs(),
		Resilience: core.ResilienceHybrid,
		Replicas:   3, K: 3, M: 2, HybridThreshold: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	values := map[string][]byte{}
	for i := 0; i < 8; i++ {
		small := fmt.Sprintf("small-%d", i)
		large := fmt.Sprintf("large-%d", i)
		values[small] = []byte(fmt.Sprintf("tiny-%d", i))
		values[large] = bytes.Repeat([]byte{byte('A' + i)}, 6000)
	}
	for k, v := range values {
		if err := c.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}

	cl.Kill(1)
	if err := cl.Restart(1); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	d := newDaemon(t, scrub.Config{Client: c, Rate: -1, Metrics: reg, Logf: t.Logf})
	report := d.RunCycle(nil)
	if report.Err != nil || report.Scanned != len(values) || report.Failed != 0 {
		t.Fatalf("scrub cycle: %s", report)
	}
	if report.Repaired == 0 || report.Rewritten == 0 {
		t.Fatalf("scrub repaired nothing after a server lost its data: %s", report)
	}

	// Converged: a second cycle finds a fully healthy keyspace…
	second := d.RunCycle(nil)
	if second.Healthy != len(values) || second.Repaired != 0 || second.Failed != 0 {
		t.Fatalf("second cycle not clean: %s", second)
	}
	// …every key verifies, and every value reads back byte-identical.
	for k, v := range values {
		if ok, err := c.Verify(k); err != nil || !ok {
			t.Fatalf("Verify(%s) after scrub = %v, %v", k, ok, err)
		}
		got, err := c.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%s) after scrub: %d bytes, %v", k, len(got), err)
		}
	}
	if got := reg.Counter("ecstore_scrub_cycles_total").Value(); got != 2 {
		t.Fatalf("cycles counter = %d", got)
	}
}

// BenchmarkScrubRecoveryCycle measures the recovery time EXPERIMENTS.md
// reports: a 5-server hybrid cluster where one server has crashed and
// rejoined empty, re-filled by a single unthrottled scrub cycle. Each
// iteration kills a different server so every cycle has real repair
// work (~1/5 of all chunks and replicas).
func BenchmarkScrubRecoveryCycle(b *testing.B) {
	cl, err := cluster.Start(cluster.Config{N: 5})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c, err := core.New(core.Config{
		Network:    cl.Network(),
		Servers:    cl.Addrs(),
		Resilience: core.ResilienceHybrid,
		Replicas:   3, K: 3, M: 2, HybridThreshold: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const keys = 200
	for i := 0; i < keys; i++ {
		var v []byte
		if i%2 == 0 {
			v = bytes.Repeat([]byte{byte(i)}, 16<<10) // EC stripe
		} else {
			v = bytes.Repeat([]byte{byte(i)}, 128) // replicated
		}
		if err := c.Set(fmt.Sprintf("bench-%03d", i), v); err != nil {
			b.Fatal(err)
		}
	}
	d, err := scrub.New(scrub.Config{Client: c, Rate: -1})
	if err != nil {
		b.Fatal(err)
	}
	var repaired, rewritten int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		victim := i % 5
		cl.Kill(victim)
		if err := cl.Restart(victim); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		report := d.RunCycle(nil)
		if report.Err != nil || report.Failed != 0 {
			b.Fatalf("cycle: %s", report)
		}
		repaired += report.Repaired
		rewritten += report.Rewritten
	}
	b.ReportMetric(float64(repaired)/float64(b.N), "keys-repaired/cycle")
	b.ReportMetric(float64(rewritten)/float64(b.N), "rewrites/cycle")
}
