// Package scrub implements the anti-entropy daemon: a background loop
// that walks the cluster's keyspace (Client.ScanKeys), verifies each
// key's redundancy (Client.Verify) and repairs what is degraded
// (Client.Repair), at a configurable rate so recovery traffic cannot
// starve foreground I/O.
//
// It closes the paper's open future-work item of redundancy recovery
// after node failure: a crashed-and-restarted server comes back empty,
// and without a scrubber its share of every stripe stays lost until an
// operator happens to Repair the right keys by hand. The design
// follows two results from the related literature: MemEC's
// degraded-mode state machine argues for an explicit recovery path
// back to full redundancy, and Rashmi et al.'s Facebook warehouse
// study shows reconstruction traffic must be throttled — hence the
// keys/sec rate limit and the bounded repair concurrency.
//
// Cycles run on a periodic interval and are additionally kicked by the
// rpc health tracker's suspect-to-recovered transition (wired through
// core.Client.OnServerRecovered), so a rejoining server is re-filled
// promptly instead of waiting out the interval.
package scrub

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/metrics"
	"ecstore/internal/stats"
)

// Defaults for the daemon's tunables.
const (
	// DefaultInterval is the period between scrub cycles.
	DefaultInterval = 5 * time.Minute
	// DefaultRate caps keyspace walking at this many keys per second.
	DefaultRate = 1000.0
	// DefaultMaxConcurrent bounds simultaneous in-flight repairs.
	DefaultMaxConcurrent = 4
)

// Client is the slice of core.Client the daemon needs. It is an
// interface so tests can exercise the daemon's control flow (fallback
// paths, error accounting) without a live cluster.
type Client interface {
	// ScanKeys returns the deduplicated logical keys of the cluster.
	ScanKeys() ([]string, error)
	// Verify reports whether key has full, consistent redundancy.
	Verify(key string) (bool, error)
	// Repair restores key's redundancy and reports what it did.
	Repair(key string) (core.RepairReport, error)
}

// recoverable is the optional wiring hook: a client that can report
// suspect-to-recovered transitions (core.Client does) gets the
// daemon's Kick registered automatically by New.
type recoverable interface {
	OnServerRecovered(fn func(addr string))
}

// Config configures a Daemon.
type Config struct {
	// Client performs the scan/verify/repair operations (required).
	Client Client
	// Interval is the period between cycles (DefaultInterval if zero;
	// negative disables the periodic timer, leaving only Kick and
	// RunCycle).
	Interval time.Duration
	// Rate throttles the keyspace walk to this many keys per second;
	// both healthy and degraded keys count, so a scrub pass over a
	// mostly-healthy keyspace costs a predictable, bounded amount of
	// cluster I/O (DefaultRate if zero; negative disables throttling).
	Rate float64
	// MaxConcurrent bounds in-flight repairs (DefaultMaxConcurrent if
	// zero).
	MaxConcurrent int
	// Metrics receives the scrub counters and the cycle-duration
	// histogram (ecstore_scrub_*). Nil discards them.
	Metrics *metrics.Registry
	// OnCycle, when non-nil, receives every completed cycle's report
	// (the kvcli scrub loop prints these; tests synchronize on them).
	OnCycle func(Report)
	// Logf receives diagnostics (discarded if nil).
	Logf func(format string, args ...any)
}

// Report summarizes one scrub cycle.
type Report struct {
	// Scanned is the number of logical keys the cycle visited.
	Scanned int
	// Healthy is how many verified clean and needed nothing.
	Healthy int
	// Repaired is how many keys had redundancy restored.
	Repaired int
	// Rewritten is the total chunks/replicas rewritten across all
	// repairs.
	Rewritten int
	// Failed is how many keys could not be verified or repaired.
	Failed int
	// Duration is the wall-clock length of the cycle.
	Duration time.Duration
	// Err is the cycle-level error (scan failed), nil otherwise.
	Err error
}

// String renders the report on one line.
func (r Report) String() string {
	s := fmt.Sprintf("scanned=%d healthy=%d repaired=%d rewritten=%d failed=%d in %v",
		r.Scanned, r.Healthy, r.Repaired, r.Rewritten, r.Failed, r.Duration.Round(time.Millisecond))
	if r.Err != nil {
		s += fmt.Sprintf(" (error: %v)", r.Err)
	}
	return s
}

// Daemon is the background scrubber. Create with New, then Start; a
// stopped daemon can be restarted.
type Daemon struct {
	cfg      Config
	interval time.Duration
	perKey   time.Duration // rate-limit spacing, 0 = unthrottled
	workers  int

	mKeysScanned  *metrics.Counter
	mKeysHealthy  *metrics.Counter
	mKeysRepaired *metrics.Counter
	mKeysFailed   *metrics.Counter
	mRewritten    *metrics.Counter
	mCycles       *metrics.Counter
	mKicks        *metrics.Counter
	gInProgress   *metrics.Gauge
	gLastDone     *metrics.Gauge
	hCycleSeconds *stats.Histogram

	kick chan struct{}

	mu      sync.Mutex
	stop    chan struct{}
	running bool
	wg      sync.WaitGroup
}

// New returns a Daemon for cfg. If cfg.Client also implements
// OnServerRecovered (core.Client does), the daemon's Kick is registered
// so a recovering server triggers a prompt cycle.
func New(cfg Config) (*Daemon, error) {
	if cfg.Client == nil {
		return nil, errors.New("scrub: Config.Client is required")
	}
	interval := cfg.Interval
	switch {
	case interval == 0:
		interval = DefaultInterval
	case interval < 0:
		interval = 0 // periodic timer disabled
	}
	rate := cfg.Rate
	if rate == 0 {
		rate = DefaultRate
	}
	var perKey time.Duration
	if rate > 0 {
		perKey = time.Duration(float64(time.Second) / rate)
	}
	workers := cfg.MaxConcurrent
	if workers <= 0 {
		workers = DefaultMaxConcurrent
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	d := &Daemon{
		cfg:      cfg,
		interval: interval,
		perKey:   perKey,
		workers:  workers,
		kick:     make(chan struct{}, 1),

		mKeysScanned:  reg.Counter("ecstore_scrub_keys_scanned_total"),
		mKeysHealthy:  reg.Counter("ecstore_scrub_keys_healthy_total"),
		mKeysRepaired: reg.Counter("ecstore_scrub_keys_repaired_total"),
		mKeysFailed:   reg.Counter("ecstore_scrub_keys_failed_total"),
		mRewritten:    reg.Counter("ecstore_scrub_rewrites_total"),
		mCycles:       reg.Counter("ecstore_scrub_cycles_total"),
		mKicks:        reg.Counter("ecstore_scrub_kicks_total"),
		gInProgress:   reg.Gauge("ecstore_scrub_in_progress"),
		gLastDone:     reg.Gauge("ecstore_scrub_last_completed_unix"),
		hCycleSeconds: reg.Histogram("ecstore_scrub_cycle_seconds"),
	}
	if r, ok := cfg.Client.(recoverable); ok {
		r.OnServerRecovered(func(addr string) {
			d.cfg.Logf("scrub: server %s recovered, kicking cycle", addr)
			d.Kick()
		})
	}
	return d, nil
}

// Start launches the background loop: one cycle per interval, plus any
// kicked cycles. Calling Start on a running daemon is a no-op.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		return
	}
	d.running = true
	d.stop = make(chan struct{})
	stop := d.stop
	d.wg.Add(1)
	go d.loop(stop)
}

// Stop halts the background loop, waiting for an in-flight cycle to
// finish. The daemon can be started again afterwards.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if !d.running {
		d.mu.Unlock()
		return
	}
	d.running = false
	close(d.stop)
	d.mu.Unlock()
	d.wg.Wait()
}

// Kick requests an immediate cycle. It never blocks: if a kick is
// already pending (or a kicked cycle is running), the request folds
// into it — repeated recovery events during one outage cost one extra
// cycle, not one per event.
func (d *Daemon) Kick() {
	d.mKicks.Inc()
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *Daemon) loop(stop chan struct{}) {
	defer d.wg.Done()
	var tick <-chan time.Time
	if d.interval > 0 {
		t := time.NewTicker(d.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			return
		case <-tick:
		case <-d.kick:
		}
		report := d.RunCycle(stop)
		d.cfg.Logf("scrub: cycle complete: %s", report)
		if d.cfg.OnCycle != nil {
			d.cfg.OnCycle(report)
		}
	}
}

// RunCycle performs one full scrub pass synchronously and returns its
// report. A nil cancel channel runs to completion; the background loop
// passes its stop channel so Stop interrupts a cycle between keys.
func (d *Daemon) RunCycle(cancel <-chan struct{}) Report {
	start := time.Now()
	d.gInProgress.Set(1)
	defer d.gInProgress.Set(0)
	finish := func(r Report) Report {
		r.Duration = time.Since(start)
		d.mCycles.Inc()
		d.hCycleSeconds.Record(r.Duration)
		d.gLastDone.Set(time.Now().Unix())
		return r
	}

	keys, err := d.cfg.Client.ScanKeys()
	if err != nil {
		d.cfg.Logf("scrub: scan failed: %v", err)
		return finish(Report{Err: err})
	}

	var (
		mu     sync.Mutex
		report Report
		wg     sync.WaitGroup
		sem    = make(chan struct{}, d.workers)
	)
	next := time.Now()
walk:
	for _, key := range keys {
		if d.perKey > 0 {
			// Pace the walk: each key's verification is due no earlier
			// than `next`, independent of how long the previous
			// verify/repair took — a fixed-rate schedule, not a fixed
			// sleep.
			if wait := time.Until(next); wait > 0 {
				select {
				case <-time.After(wait):
				case <-cancel:
					break walk
				}
			}
			next = next.Add(d.perKey)
		} else {
			select {
			case <-cancel:
				break walk
			default:
			}
		}
		d.mKeysScanned.Inc()
		mu.Lock()
		report.Scanned++
		mu.Unlock()

		sem <- struct{}{}
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			defer func() { <-sem }()
			healthy, repaired, rewritten, failed := d.scrubKey(key)
			mu.Lock()
			if healthy {
				report.Healthy++
			}
			if repaired {
				report.Repaired++
			}
			report.Rewritten += rewritten
			if failed {
				report.Failed++
			}
			mu.Unlock()
		}(key)
	}
	wg.Wait()
	return finish(report)
}

// scrubKey verifies one key and repairs it when degraded.
func (d *Daemon) scrubKey(key string) (healthy, repaired bool, rewritten int, failed bool) {
	ok, err := d.cfg.Client.Verify(key)
	switch {
	case err == nil && ok:
		d.mKeysHealthy.Inc()
		return true, false, 0, false
	case err != nil && errors.Is(err, core.ErrNotFound):
		// Deleted (or fully expired) between scan and verify: nothing
		// to maintain. The next cycle will not see it.
		d.mKeysHealthy.Inc()
		return true, false, 0, false
	case err != nil && !isVerifyUnsupported(err):
		// Transient verification failure (e.g. unreachable holders):
		// attempting repair is still correct — it probes the same
		// locations and rewrites whatever it can.
		d.cfg.Logf("scrub: verify %q: %v", key, err)
	}

	rep, err := d.cfg.Client.Repair(key)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			d.mKeysHealthy.Inc()
			return true, false, 0, false
		}
		d.mKeysFailed.Inc()
		d.cfg.Logf("scrub: repair %q: %v", key, err)
		return false, false, 0, true
	}
	if rep.Rewritten < rep.Missing {
		// Partial repair (a holder is still down): count the work done
		// but flag the key so the report shows the keyspace has not
		// converged yet.
		d.mKeysFailed.Inc()
		d.mRewritten.Add(int64(rep.Rewritten))
		return false, rep.Rewritten > 0, rep.Rewritten, true
	}
	if rep.Missing == 0 {
		// Verify was pessimistic (or raced a concurrent write); the
		// probe found full redundancy.
		d.mKeysHealthy.Inc()
		return true, false, 0, false
	}
	d.mKeysRepaired.Inc()
	d.mRewritten.Add(int64(rep.Rewritten))
	return false, true, rep.Rewritten, false
}

// isVerifyUnsupported matches the core error for resilience modes
// without a verify implementation, where repair-always is the scrub
// policy.
func isVerifyUnsupported(err error) bool {
	return err != nil && strings.Contains(err.Error(), "does not support verify")
}
