package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"ecstore/internal/rpc"
	"ecstore/internal/store"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// startServers launches n servers that know each other as peers and
// returns them with a client pool.
func startServers(t *testing.T, n int, storeBytes int64) ([]*Server, *rpc.Pool) {
	t.Helper()
	network := transport.NewInproc(transport.Shape{})
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("srv-%d", i)
	}
	servers := make([]*Server, n)
	for i := range addrs {
		srv, err := New(Config{
			Addr:    addrs[i],
			Network: network,
			Peers:   addrs,
			Store:   store.Config{MaxBytes: storeBytes},
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(srv.Close)
	}
	pool := rpc.NewPool(network)
	t.Cleanup(pool.Close)
	return servers, pool
}

func TestBasicOps(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	addr := servers[0].Addr()

	if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpPing, Key: "p"}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpSet, Key: "k", Value: []byte("v")}); err != nil {
		t.Fatalf("set: %v", err)
	}
	resp, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpGet, Key: "k"})
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(resp.Value) != "v" {
		t.Fatalf("get value %q", resp.Value)
	}
	if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpDelete, Key: "k"}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpGet, Key: "k"}); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpDelete, Key: "k"}); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestStatsOp(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	addr := servers[0].Addr()
	_, _ = pool.Roundtrip(addr, &wire.Request{Op: wire.OpSet, Key: "k", Value: []byte("v")})
	resp, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpStats, Key: "s"})
	if err != nil {
		t.Fatal(err)
	}
	var st store.Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		t.Fatal(err)
	}
	if st.Sets != 1 || st.Items != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnknownOp(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	// Op must be wire-valid to pass framing; OpStats-like unknown
	// handling is covered by sending a valid op the server rejects.
	resp, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{Op: wire.OpEncodeSet, Key: "k", Value: []byte("v")})
	if err == nil {
		t.Fatalf("encode-set without metadata succeeded: %+v", resp)
	}
}

func TestOutOfMemoryStatus(t *testing.T) {
	servers, pool := startServers(t, 1, 256)
	addr := servers[0].Addr()
	_, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpSet, Key: "k", Value: make([]byte, 10_000)})
	if !errors.Is(err, wire.ErrOutOfMemory) {
		t.Fatalf("got %v", err)
	}
}

func TestServerSideEncodeDecode(t *testing.T) {
	servers, pool := startServers(t, 5, 0)
	primaryOf := func(key string) string {
		// Any server can coordinate; send to srv-0 regardless — the
		// handler places chunks by ring, not by receiver.
		_ = key
		return servers[0].Addr()
	}
	value := bytes.Repeat([]byte("payload"), 1000)
	meta := wire.ECMeta{K: 3, M: 2}
	if _, err := pool.Roundtrip(primaryOf("key1"), &wire.Request{
		Op: wire.OpEncodeSet, Key: "key1", Value: value, Meta: meta,
	}); err != nil {
		t.Fatalf("encode-set: %v", err)
	}
	// Chunks must exist on 5 distinct servers.
	stored := 0
	for _, srv := range servers {
		stored += srv.Store().Len()
	}
	if stored != 5 {
		t.Fatalf("stored %d chunks, want 5", stored)
	}
	resp, err := pool.Roundtrip(primaryOf("key1"), &wire.Request{
		Op: wire.OpDecodeGet, Key: "key1", Meta: meta,
	})
	if err != nil {
		t.Fatalf("decode-get: %v", err)
	}
	if !bytes.Equal(resp.Value, value) {
		t.Fatal("decode-get value differs")
	}
}

func TestDecodeGetDegraded(t *testing.T) {
	servers, pool := startServers(t, 5, 0)
	value := bytes.Repeat([]byte("abc"), 5000)
	meta := wire.ECMeta{K: 3, M: 2}
	coord := servers[0].Addr()
	if _, err := pool.Roundtrip(coord, &wire.Request{
		Op: wire.OpEncodeSet, Key: "k", Value: value, Meta: meta,
	}); err != nil {
		t.Fatal(err)
	}
	// Kill two non-coordinator servers; decode must still succeed.
	servers[2].Close()
	servers[3].Close()
	resp, err := pool.Roundtrip(coord, &wire.Request{Op: wire.OpDecodeGet, Key: "k", Meta: meta})
	if err != nil {
		t.Fatalf("degraded decode-get: %v", err)
	}
	if !bytes.Equal(resp.Value, value) {
		t.Fatal("degraded value differs")
	}
}

func TestDecodeGetMissingKey(t *testing.T) {
	servers, pool := startServers(t, 5, 0)
	_, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{
		Op: wire.OpDecodeGet, Key: "nope", Meta: wire.ECMeta{K: 3, M: 2},
	})
	if !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestEncodeSetNoMeta(t *testing.T) {
	servers, pool := startServers(t, 5, 0)
	_, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{Op: wire.OpEncodeSet, Key: "k", Value: []byte("v")})
	if err == nil {
		t.Fatal("encode-set without K/M accepted")
	}
	_, err = pool.Roundtrip(servers[0].Addr(), &wire.Request{Op: wire.OpDecodeGet, Key: "k"})
	if err == nil {
		t.Fatal("decode-get without K/M accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	servers, _ := startServers(t, 1, 0)
	servers[0].Close()
	servers[0].Close()
}

func TestAddrInUse(t *testing.T) {
	network := transport.NewInproc(transport.Shape{})
	srv, err := New(Config{Addr: "a", Network: network, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := New(Config{Addr: "a", Network: network, Logf: func(string, ...any) {}}); err == nil {
		t.Fatal("second listen on same addr succeeded")
	}
	if _, err := New(Config{Addr: "b"}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestPlacementWrapsSmallCluster(t *testing.T) {
	// A 3-server cluster still accepts RS(3,2): chunks wrap onto
	// servers (reduced fault tolerance, but functional).
	servers, pool := startServers(t, 3, 0)
	value := bytes.Repeat([]byte("x"), 999)
	meta := wire.ECMeta{K: 3, M: 2}
	if _, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{
		Op: wire.OpEncodeSet, Key: "k", Value: value, Meta: meta,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{Op: wire.OpDecodeGet, Key: "k", Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Value, value) {
		t.Fatal("value differs")
	}
}
