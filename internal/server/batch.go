package server

import (
	"ecstore/internal/wire"
)

// batchable reports whether op may ride inside an OpBatch frame. Only
// store-local operations qualify: the coordinated ops (OpEncodeSet /
// OpDecodeGet) each fan out to peers inside a worker, so batching N of
// them would serialize N peer round-trip groups on one worker — the
// client keeps those per-key and pipelined instead. Admin ops
// (stats/scan/flush) have no bulk caller and carry frame-sized
// payloads of their own.
func batchable(op wire.Op) bool {
	switch op {
	case wire.OpSet, wire.OpSetChunk, wire.OpGet, wire.OpGetChunk,
		wire.OpDelete, wire.OpCompareSet, wire.OpPing:
		return true
	default:
		return false
	}
}

// handleBatch executes a vector of sub-requests against the store and
// returns the sub-responses in one frame. Each sub-request goes
// through s.handle, so per-op counters and error accounting see batched
// and unbatched traffic identically. Sub-request values alias the
// pooled batch frame body; that is safe for the same reason the worker
// releases the request before writing the response — the store copies
// on Set, and Get returns store-owned copies, so nothing in a
// sub-response aliases the inbound frame.
//
// Failure discipline: a sub-op that fails reports its status in its
// own slot; the frame-level response is an error only when the batch
// itself is unusable — undecodable payload, or an aggregate response
// too large for one frame (the client then splits and re-sends).
func (s *Server) handleBatch(req *wire.Request) *wire.Response {
	subs, err := wire.DecodeBatchRequests(req.Value)
	if err != nil {
		return errorResponse(err)
	}
	resps := make([]wire.BatchResp, len(subs))
	for i := range subs {
		sub := &subs[i]
		if !batchable(sub.Op) {
			s.mOpErrors.Inc()
			resps[i] = wire.BatchResp{
				Status: wire.StatusError,
				Value:  []byte("op " + sub.Op.String() + " not batchable"),
			}
			continue
		}
		r := s.handle(&wire.Request{
			Op:         sub.Op,
			Key:        sub.Key,
			Value:      sub.Value,
			TTLSeconds: sub.TTLSeconds,
			Compare:    sub.Compare,
			Meta:       sub.Meta,
		})
		resps[i] = wire.BatchResp{
			Status:     r.Status,
			Value:      r.Value,
			TTLSeconds: r.TTLSeconds,
			Meta:       r.Meta,
		}
	}
	val, err := wire.AppendBatchResponses(nil, resps)
	if err != nil {
		// The aggregate response outgrew the frame. The writes (if any)
		// have landed; the client bisects the batch and re-reads.
		return errorResponse(err)
	}
	return &wire.Response{Status: wire.StatusOK, Value: val}
}
