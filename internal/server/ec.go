package server

import (
	"errors"
	"fmt"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/rpc"
	"ecstore/internal/wire"
)

// code returns a cached RS-Vandermonde code for (k, m). Server-side
// encode/decode always uses RS(K,M), the code the paper selects.
// Lock-free on the hit path: the codecs are concurrency-safe, so
// workers encode and decode in parallel. Two workers racing the first
// miss may both construct a code; LoadOrStore keeps one and the other
// is garbage — cheap, and only ever on first use of a (k, m) pair.
func (s *Server) code(k, m int) (erasure.Code, error) {
	key := [2]int{k, m}
	if c, ok := s.codes.Load(key); ok {
		return c.(erasure.Code), nil
	}
	c, err := erasure.NewRSVan(k, m)
	if err != nil {
		return nil, err
	}
	actual, _ := s.codes.LoadOrStore(key, c)
	return actual.(erasure.Code), nil
}

// placement returns the n chunk-holder addresses for key: the ring
// primary followed by the next distinct servers. When the cluster has
// fewer than n members, chunk i wraps onto placement[i % members].
func (s *Server) placement(key string, n int) ([]string, error) {
	servers := s.view.Ring().GetN(key, n)
	if len(servers) == 0 {
		return nil, errors.New("server: no peers configured for erasure placement")
	}
	out := make([]string, n)
	for i := range out {
		out[i] = servers[i%len(servers)]
	}
	return out, nil
}

// handleEncodeSet implements the server-side-encode half of the
// Era-SE-SD and Era-SE-CD schemes: the primary splits the value,
// computes parity on its own CPU (overlapped with peer communication
// by the worker pool), stores its own chunks locally, and distributes
// the rest to peers with non-blocking chunk writes.
func (s *Server) handleEncodeSet(req *wire.Request) *wire.Response {
	k, m := int(req.Meta.K), int(req.Meta.M)
	if k == 0 {
		return &wire.Response{Status: wire.StatusError, Value: []byte("encode-set: missing K/M metadata")}
	}
	code, err := s.code(k, m)
	if err != nil {
		return errorResponse(err)
	}
	placement, err := s.placement(req.Key, k+m)
	if err != nil {
		return errorResponse(err)
	}
	// Pooled split: chunk payloads are copies, so the shard buffers go
	// back to the pool when the handler returns.
	ps := erasure.SplitPooled(req.Value, k, m, nil)
	defer ps.Release()
	shards := ps.Shards
	if err := code.Encode(shards); err != nil {
		return errorResponse(err)
	}
	meta := req.Meta
	meta.TotalLen = uint32(len(req.Value))
	meta.Stripe = wire.NewStripeID()

	// Issue all remote chunk writes first (non-blocking), then store
	// local chunks while the network requests are in flight.
	calls := make([]*rpc.Call, 0, k+m)
	var localErr error
	type localChunk struct {
		idx  int
		addr string
	}
	locals := make([]localChunk, 0, 2)
	for i, addr := range placement {
		cm := meta
		cm.ChunkIndex = uint8(i)
		if addr == s.cfg.Addr {
			locals = append(locals, localChunk{idx: i, addr: addr})
			continue
		}
		// The payload buffer is leased; Send owns it on every path and
		// the frame writer releases it once the bytes are on the wire.
		call, err := s.peers.Send(addr, &wire.Request{
			Op:         wire.OpSetChunk,
			Key:        wire.ChunkKey(req.Key, i),
			Value:      wire.EncodeChunkPayloadPooled(s.framePool, cm, shards[i]),
			ValuePool:  s.framePool,
			TTLSeconds: req.TTLSeconds,
			Meta:       cm,
		})
		if err != nil {
			return errorResponse(fmt.Errorf("distribute chunk %d to %s: %w", i, addr, err))
		}
		calls = append(calls, call)
	}
	ttl := time.Duration(req.TTLSeconds) * time.Second
	for _, lc := range locals {
		cm := meta
		cm.ChunkIndex = uint8(lc.idx)
		payload := wire.EncodeChunkPayloadPooled(s.framePool, cm, shards[lc.idx])
		err := s.store.SetVersioned(wire.ChunkKey(req.Key, lc.idx), payload, ttl, cm.Stripe)
		s.framePool.Put(payload) // the store copied it
		if err != nil {
			localErr = err
		}
	}
	for _, call := range calls {
		resp, err := call.Wait()
		if err == nil {
			err = resp.Err()
		}
		resp.Release()
		if err != nil {
			return errorResponse(fmt.Errorf("peer chunk write: %w", err))
		}
	}
	if localErr != nil {
		return errorResponse(localErr)
	}
	return &wire.Response{Status: wire.StatusOK, Meta: meta}
}

// handleDecodeGet implements the server-side-decode half of the
// Era-SE-SD and Era-CE-SD schemes: the primary aggregates any K of the
// K+M chunks (local reads plus non-blocking peer reads), reconstructs
// missing data chunks if needed, and returns the whole value.
func (s *Server) handleDecodeGet(req *wire.Request) *wire.Response {
	k, m := int(req.Meta.K), int(req.Meta.M)
	if k == 0 {
		return &wire.Response{Status: wire.StatusError, Value: []byte("decode-get: missing K/M metadata")}
	}
	placement, err := s.placement(req.Key, k+m)
	if err != nil {
		return errorResponse(err)
	}
	collector := wire.NewChunkCollector(k, k+m)

	// Chunks handed to the collector alias the pooled bodies of peer
	// responses, so those leases stay live until after Join copies the
	// data out; only then do they go back to the pool.
	var retained []*wire.Response
	defer func() {
		for _, r := range retained {
			r.Release()
		}
	}()

	// fetch attempts to retrieve the chunk set indexed by idxs;
	// failures are tolerated (they are what parity is for), and
	// chunks group by stripe so concurrent writes never tear. The TTL
	// each chunk holder reports is remembered per stripe so the final
	// response can carry the remaining lifetime of the winning stripe.
	ttlByStripe := make(map[uint64]uint32)
	fetch := func(idxs []int) {
		calls := make(map[int]*rpc.Call, len(idxs))
		for _, i := range idxs {
			addr := placement[i]
			key := wire.ChunkKey(req.Key, i)
			if addr == s.cfg.Addr {
				if payload, _, ttl, ok := s.store.GetMeta(key); ok {
					if meta, chunk, err := wire.DecodeChunkPayload(payload); err == nil {
						collector.Add(meta, chunk)
						if _, seen := ttlByStripe[meta.Stripe]; !seen {
							ttlByStripe[meta.Stripe] = ttlSeconds(ttl)
						}
					}
				}
				continue
			}
			call, err := s.peers.Send(addr, &wire.Request{Op: wire.OpGetChunk, Key: key})
			if err != nil {
				continue
			}
			calls[i] = call
		}
		for _, call := range calls {
			resp, err := call.Wait()
			if err != nil || resp.Err() != nil {
				resp.Release()
				continue
			}
			meta, chunk, err := wire.DecodeChunkPayload(resp.Value)
			if err != nil {
				resp.Release()
				continue
			}
			collector.Add(meta, chunk)
			if _, seen := ttlByStripe[meta.Stripe]; !seen {
				ttlByStripe[meta.Stripe] = resp.TTLSeconds
			}
			retained = append(retained, resp)
		}
	}

	// Round 1: the K data chunks. Round 2: parity as needed.
	fetch(seqInts(0, k))
	if !collector.Decodable() {
		fetch(seqInts(k, k+m))
	}
	stripe, totalLen, chunks, ok := collector.Best()
	if !ok {
		return &wire.Response{Status: wire.StatusNotFound}
	}

	// Degraded read: rebuild only the missing data chunks — the caller
	// gets the joined value, so recomputing parity would be wasted work.
	var rebuilt []int
	for i := 0; i < k; i++ {
		if chunks[i] == nil {
			rebuilt = append(rebuilt, i)
		}
	}
	if len(rebuilt) > 0 {
		code, err := s.code(k, m)
		if err != nil {
			return errorResponse(err)
		}
		if err := erasure.ReconstructData(code, chunks); err != nil {
			return errorResponse(err)
		}
	}
	value, err := erasure.Join(chunks, k, int(totalLen))
	// Join copied the data; pool-allocated rebuilt chunks can be
	// recycled. Peer-owned chunk buffers are never released.
	for _, i := range rebuilt {
		erasure.DefaultPool.Put(chunks[i])
	}
	if err != nil {
		return errorResponse(err)
	}
	return &wire.Response{
		Status:     wire.StatusOK,
		Value:      value,
		TTLSeconds: ttlByStripe[stripe],
		Meta:       wire.ECMeta{K: uint8(k), M: uint8(m), TotalLen: totalLen, Stripe: stripe},
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
