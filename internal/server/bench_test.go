package server_test

import (
	"bytes"
	"fmt"
	"testing"

	"ecstore/internal/rpc"
	"ecstore/internal/server"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// BenchmarkEncodeSetWorkers measures server-side-encode (Era-SE-*)
// throughput as the coordinator's worker pool grows. Before the codec
// cache was unserialized, every encode took a global mutex and worker
// counts beyond 1 bought nothing on this path.
func BenchmarkEncodeSetWorkers(b *testing.B) {
	const valueSize = 128 << 10
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			n := transport.NewInproc(transport.Shape{})
			addrs := make([]string, 5) // RS(3,2) placement
			for i := range addrs {
				addrs[i] = fmt.Sprintf("s%d", i)
			}
			servers := make([]*server.Server, len(addrs))
			for i, addr := range addrs {
				srv, err := server.New(server.Config{
					Addr: addr, Network: n, Peers: addrs, Workers: workers,
					Logf: func(string, ...any) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				servers[i] = srv
			}
			defer func() {
				for _, s := range servers {
					s.Close()
				}
			}()
			value := bytes.Repeat([]byte{0xEC}, valueSize)
			meta := wire.ECMeta{K: 3, M: 2, TotalLen: valueSize}
			b.ReportAllocs()
			b.SetBytes(valueSize)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				p := rpc.NewPool(n)
				defer p.Close()
				i := 0
				for pb.Next() {
					i++
					resp, err := p.Roundtrip(addrs[0], &wire.Request{
						Op: wire.OpEncodeSet, Key: fmt.Sprintf("bench/%d", i),
						Value: value, Meta: meta,
					})
					if err != nil {
						b.Fatal(err)
					}
					releaseBenchResp(resp)
				}
			})
		})
	}
}

// releaseBenchResp returns a response's pooled frame body. Replace the
// body with a no-op when running against pre-pooling revisions for a
// before/after comparison.
func releaseBenchResp(r *wire.Response) { r.Release() }
