// Package server implements the key-value store server: a
// connection-multiplexing request dispatcher over a worker pool (the
// paper's multi-threaded Memcached server with 8 workers), the item
// store, and a server-side Asynchronous Request Processing Engine that
// talks to peer servers to execute the server-side encode (Era-SE-*)
// and server-side decode (Era-*-SD) schemes.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/hashring"
	"ecstore/internal/rpc"
	"ecstore/internal/store"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// DefaultWorkers matches the paper's per-server worker thread count.
const DefaultWorkers = 8

// DefaultPeerTimeout bounds each peer RPC round trip issued by the
// server-side encode/decode coordinator, so one hung peer cannot wedge
// a worker forever.
const DefaultPeerTimeout = 15 * time.Second

// Config configures a Server.
type Config struct {
	// Addr is the address to listen on.
	Addr string
	// Network is the transport to listen/dial through.
	Network transport.Network
	// Peers lists every server address in the cluster, including this
	// one. It seeds the consistent-hashing ring used to locate chunk
	// placements for the server-side schemes. May be nil for a
	// standalone server.
	Peers []string
	// Store configures the item store.
	Store store.Config
	// Workers sets the worker pool size (DefaultWorkers if zero).
	Workers int
	// PeerTimeout bounds each RPC to a peer server during server-side
	// encode/decode (DefaultPeerTimeout if zero; negative disables
	// deadlines).
	PeerTimeout time.Duration
	// Logf receives diagnostics; log.Printf if nil.
	Logf func(format string, args ...any)
}

// Server is a running key-value store server.
type Server struct {
	cfg      Config
	listener transport.Listener
	store    *store.Store
	ring     *hashring.Ring
	peers    *rpc.Pool
	jobs     chan job
	quit     chan struct{}
	logf     func(format string, args ...any)

	mu     sync.Mutex
	conns  map[*connWriter]struct{}
	closed bool

	wg sync.WaitGroup

	codeMu sync.Mutex
	codes  map[[2]int]erasure.Code
}

type job struct {
	req *wire.Request
	out *connWriter
}

// connWriter serializes response writes for one connection.
type connWriter struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	conn transport.Conn
	buf  []byte
}

func (cw *connWriter) write(resp *wire.Response) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	var err error
	cw.buf, err = wire.AppendResponse(cw.buf[:0], resp)
	if err != nil {
		return err
	}
	if _, err := cw.bw.Write(cw.buf); err != nil {
		return err
	}
	return cw.bw.Flush()
}

// New creates and starts a server listening on cfg.Addr.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	ln, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server listen %s: %w", cfg.Addr, err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	peerTimeout := cfg.PeerTimeout
	switch {
	case peerTimeout == 0:
		peerTimeout = DefaultPeerTimeout
	case peerTimeout < 0:
		peerTimeout = 0 // deadlines disabled
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		store:    store.New(cfg.Store),
		ring:     hashring.New(0),
		peers:    rpc.NewPool(cfg.Network, rpc.WithCallTimeout(peerTimeout)),
		// The job queue is sized to keep every worker busy while the
		// readers stay responsive; beyond that, backpressure blocks
		// the connection reader, which is the desired flow control.
		jobs:  make(chan job, workers*2),
		quit:  make(chan struct{}),
		logf:  logf,
		conns: make(map[*connWriter]struct{}),
		codes: make(map[[2]int]erasure.Code),
	}
	for _, p := range cfg.Peers {
		s.ring.Add(p)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the resolved listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Store exposes the underlying item store (used by stats and tests).
func (s *Server) Store() *store.Store { return s.store }

// Close stops the server: the listener closes, open connections are
// torn down, and workers drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*connWriter, 0, len(s.conns))
	for cw := range s.conns {
		conns = append(conns, cw)
	}
	s.mu.Unlock()

	close(s.quit)
	_ = s.listener.Close()
	for _, cw := range conns {
		_ = cw.conn.Close()
	}
	s.peers.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		cw := &connWriter{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[cw] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn, cw)
	}
}

func (s *Server) readLoop(conn transport.Conn, cw *connWriter) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cw)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		req, err := wire.ReadRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, transport.ErrClosed) {
				s.logf("server %s: read: %v", s.cfg.Addr, err)
			}
			return
		}
		select {
		case s.jobs <- job{req: req, out: cw}:
		case <-s.quit:
			return
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			resp := s.handle(j.req)
			resp.ID = j.req.ID
			// A write error means the connection died; its read loop
			// cleans up.
			_ = j.out.write(resp)
		case <-s.quit:
			return
		}
	}
}

func errorResponse(err error) *wire.Response {
	switch {
	case errors.Is(err, wire.ErrNotFound):
		return &wire.Response{Status: wire.StatusNotFound}
	case errors.Is(err, store.ErrOutOfMemory), errors.Is(err, store.ErrValueTooLarge):
		return &wire.Response{Status: wire.StatusOutOfMemory}
	default:
		return &wire.Response{Status: wire.StatusError, Value: []byte(err.Error())}
	}
}

func (s *Server) handle(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpSet, wire.OpSetChunk:
		if err := s.store.Set(req.Key, req.Value, time.Duration(req.TTLSeconds)*time.Second); err != nil {
			return errorResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpGet, wire.OpGetChunk:
		v, ok := s.store.Get(req.Key)
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v}
	case wire.OpDelete:
		// A delete carrying a stripe ID is conditional: it removes the
		// chunk only if the stored chunk still belongs to that stripe.
		// The client's failed-write unwind uses this so it never deletes
		// a chunk a concurrent newer Set has already overwritten.
		if req.Meta.Stripe != 0 {
			v, ok := s.store.Get(req.Key)
			if !ok {
				return &wire.Response{Status: wire.StatusNotFound}
			}
			if m, _, err := wire.DecodeChunkPayload(v); err == nil && m.Stripe != req.Meta.Stripe {
				// Superseded by a newer write: nothing to unwind.
				return &wire.Response{Status: wire.StatusOK}
			}
			// Matching stripe (or an undecodable chunk, which can only
			// shadow good data): fall through and delete it.
		}
		if !s.store.Delete(req.Key) {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpEncodeSet:
		return s.handleEncodeSet(req)
	case wire.OpDecodeGet:
		return s.handleDecodeGet(req)
	case wire.OpStats:
		data, err := json.Marshal(s.store.Stats())
		if err != nil {
			return errorResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Value: data}
	default:
		return &wire.Response{Status: wire.StatusError, Value: []byte("unknown op")}
	}
}
