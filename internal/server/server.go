// Package server implements the key-value store server: a
// connection-multiplexing request dispatcher over a worker pool (the
// paper's multi-threaded Memcached server with 8 workers), the item
// store, and a server-side Asynchronous Request Processing Engine that
// talks to peer servers to execute the server-side encode (Era-SE-*)
// and server-side decode (Era-*-SD) schemes.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"sync"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/membership"
	"ecstore/internal/metrics"
	"ecstore/internal/rpc"
	"ecstore/internal/stats"
	"ecstore/internal/store"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// DefaultWorkers matches the paper's per-server worker thread count.
const DefaultWorkers = 8

// DefaultPeerTimeout bounds each peer RPC round trip issued by the
// server-side encode/decode coordinator, so one hung peer cannot wedge
// a worker forever.
const DefaultPeerTimeout = 15 * time.Second

// Config configures a Server.
type Config struct {
	// Addr is the address to listen on.
	Addr string
	// Network is the transport to listen/dial through.
	Network transport.Network
	// Peers lists every server address in the cluster, including this
	// one. It seeds the epoch-1 membership view whose consistent-hashing
	// ring locates chunk placements for the server-side schemes; newer
	// views arrive over the wire (OpRingUpdate). May be nil for a
	// standalone server.
	Peers []string
	// Store configures the item store.
	Store store.Config
	// Workers sets the worker pool size (DefaultWorkers if zero).
	Workers int
	// PeerTimeout bounds each RPC to a peer server during server-side
	// encode/decode (DefaultPeerTimeout if zero; negative disables
	// deadlines).
	PeerTimeout time.Duration
	// Logf receives diagnostics; log.Printf if nil.
	Logf func(format string, args ...any)
	// Metrics receives the server's counters, gauges, and latency
	// histograms (ecstore_server_*, ecstore_store_*, and the rpc_*
	// series of the peer pool). A fresh registry is created when nil,
	// reachable via Server.Metrics, so instrumentation is always on.
	Metrics *metrics.Registry
	// FramePool is the buffer pool request bodies and response frames
	// are leased from (bufpool.Default if nil, shared with the codec).
	FramePool *bufpool.Pool
}

// Server is a running key-value store server.
type Server struct {
	cfg      Config
	listener transport.Listener
	store    *store.Store
	view     *membership.Tracker
	peers    *rpc.Pool
	jobs     chan job
	quit     chan struct{}
	logf     func(format string, args ...any)

	reg            *metrics.Registry
	mOps           map[wire.Op]*metrics.Counter
	mOpsUnknown    *metrics.Counter
	mOpErrors      *metrics.Counter
	hHandleSeconds *stats.Histogram

	mu     sync.Mutex
	conns  map[*connWriter]struct{}
	closed bool

	wg sync.WaitGroup

	// codes caches constructed erasure codecs by {K, M}. A sync.Map —
	// not a mutex-guarded map — because the codecs themselves (matrix,
	// inversion cache, worker pool) are concurrency-safe: the old global
	// codeMu serialized every server-side encode/decode across all
	// workers, flattening Era-SE-* throughput at exactly the point the
	// worker pool was supposed to scale it.
	codes sync.Map // map[[2]int]erasure.Code

	framePool *bufpool.Pool
}

type job struct {
	req *wire.Request
	out *connWriter
}

// connWriter serializes response writes for one connection through a
// FrameQueue: workers encode response frames concurrently (no shared
// lock) and enqueue them; the queue's writer goroutine flushes
// everything queued since its last write as one vectored batch, so
// responses to an ARPE window of pipelined requests share syscalls.
type connWriter struct {
	conn transport.Conn
	fq   *wire.FrameQueue
	pool *bufpool.Pool
}

// respQueueDepth bounds encoded-but-unwritten responses per connection;
// beyond it workers block on Enqueue, which is the desired flow
// control (a slow reader should stall its own responses, not the box).
const respQueueDepth = 256

func newConnWriter(conn transport.Conn, pool *bufpool.Pool) *connWriter {
	cw := &connWriter{conn: conn, pool: pool}
	// A write error means the peer is gone: close the conn so the read
	// loop exits and tears the connection down.
	cw.fq = wire.NewFrameQueue(conn, respQueueDepth, pool, func(error) { _ = conn.Close() })
	return cw
}

func (cw *connWriter) write(resp *wire.Response) error {
	frame, err := wire.EncodeResponseFrame(cw.pool, resp)
	if err != nil {
		return err
	}
	return cw.fq.Enqueue(frame)
}

// New creates and starts a server listening on cfg.Addr.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	ln, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server listen %s: %w", cfg.Addr, err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	peerTimeout := cfg.PeerTimeout
	switch {
	case peerTimeout == 0:
		peerTimeout = DefaultPeerTimeout
	case peerTimeout < 0:
		peerTimeout = 0 // deadlines disabled
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	framePool := cfg.FramePool
	if framePool == nil {
		framePool = bufpool.Default
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		store:    store.New(cfg.Store),
		view:     membership.NewTracker(membership.NewView(cfg.Peers), 0),
		peers:    rpc.NewPool(cfg.Network, rpc.WithCallTimeout(peerTimeout), rpc.WithMetrics(reg)),
		// The job queue is sized to keep every worker busy while the
		// readers stay responsive; beyond that, backpressure blocks
		// the connection reader, which is the desired flow control.
		jobs:      make(chan job, workers*2),
		quit:      make(chan struct{}),
		logf:      logf,
		conns:     make(map[*connWriter]struct{}),
		framePool: framePool,

		reg:            reg,
		mOpsUnknown:    reg.Counter(`ecstore_server_ops_total{op="unknown"}`),
		mOpErrors:      reg.Counter("ecstore_server_op_errors_total"),
		hHandleSeconds: reg.Histogram("ecstore_server_handle_seconds"),
	}
	s.mOps = make(map[wire.Op]*metrics.Counter)
	for _, op := range []wire.Op{
		wire.OpSet, wire.OpGet, wire.OpDelete, wire.OpSetChunk, wire.OpGetChunk,
		wire.OpEncodeSet, wire.OpDecodeGet, wire.OpStats, wire.OpPing, wire.OpScan,
		wire.OpCompareSet, wire.OpFlush, wire.OpBatch, wire.OpRingGet, wire.OpRingUpdate,
		wire.OpApplyDelta,
	} {
		s.mOps[op] = reg.Counter(fmt.Sprintf("ecstore_server_ops_total{op=%q}", op))
	}
	s.store.RegisterMetrics(reg)
	// The queue depth is read through the channel at snapshot time
	// rather than kept as an inc/dec pair, so it can never drift.
	reg.RegisterFunc("ecstore_server_job_queue_depth", func() int64 { return int64(len(s.jobs)) })
	reg.RegisterFunc("ecstore_server_membership_epoch", func() int64 { return int64(s.view.Epoch()) })
	reg.Gauge("ecstore_server_workers").Set(int64(workers))
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the resolved listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Store exposes the underlying item store (used by stats and tests).
func (s *Server) Store() *store.Store { return s.store }

// View returns the server's current membership view.
func (s *Server) View() membership.View { return s.view.Current() }

// AdoptView offers the server a membership view out of band (the
// harness uses it to seed a restarted node); the wire path is
// OpRingUpdate. Reports whether the view was newer and installed.
func (s *Server) AdoptView(v membership.View) bool { return s.view.Adopt(v) }

// Metrics returns the server's metrics registry — the same registry an
// OpStats request serializes and the -metrics-addr endpoint scrapes.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Close stops the server: the listener closes, open connections are
// torn down, and workers drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*connWriter, 0, len(s.conns))
	for cw := range s.conns {
		conns = append(conns, cw)
	}
	s.mu.Unlock()

	close(s.quit)
	_ = s.listener.Close()
	for _, cw := range conns {
		_ = cw.conn.Close()
	}
	s.peers.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		cw := newConnWriter(conn, s.framePool)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[cw] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn, cw)
	}
}

func (s *Server) readLoop(conn transport.Conn, cw *connWriter) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cw)
		s.mu.Unlock()
		_ = conn.Close()
		// Stop the response writer and release any frames it still
		// holds; workers racing a teardown get ErrQueueClosed (their
		// frames are released by Enqueue).
		_ = cw.fq.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		req, err := wire.ReadRequestPooled(br, s.framePool)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, transport.ErrClosed) {
				s.logf("server %s: read: %v", s.cfg.Addr, err)
			}
			return
		}
		select {
		case s.jobs <- job{req: req, out: cw}:
		case <-s.quit:
			req.Release()
			return
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			start := time.Now()
			resp := s.handle(j.req)
			s.hHandleSeconds.Record(time.Since(start))
			resp.ID = j.req.ID
			// The handlers never let the request body escape into the
			// response (the store copies on Set and Get), so the leased
			// frame body can go back to the pool before the write.
			j.req.Release()
			// A write error means the connection died; its read loop
			// cleans up.
			_ = j.out.write(resp)
		case <-s.quit:
			return
		}
	}
}

func errorResponse(err error) *wire.Response {
	switch {
	case errors.Is(err, wire.ErrNotFound):
		return &wire.Response{Status: wire.StatusNotFound}
	case errors.Is(err, store.ErrOutOfMemory), errors.Is(err, store.ErrValueTooLarge):
		return &wire.Response{Status: wire.StatusOutOfMemory}
	default:
		return &wire.Response{Status: wire.StatusError, Value: []byte(err.Error())}
	}
}

func (s *Server) handle(req *wire.Request) *wire.Response {
	if c, ok := s.mOps[req.Op]; ok {
		c.Inc()
	} else {
		s.mOpsUnknown.Inc()
	}
	resp := s.dispatch(req)
	// Not-found and a lost CAS race are normal cache outcomes, not
	// server errors.
	if resp.Status != wire.StatusOK && resp.Status != wire.StatusNotFound &&
		resp.Status != wire.StatusExists {
		s.mOpErrors.Inc()
	}
	return resp
}

// epochExempt lists the operations served regardless of the request's
// membership epoch: liveness, stats, the ring protocol itself — a
// stale party must always be able to probe and catch up — and the
// address-directed fan-outs (flush, scan) whose semantics do not
// depend on placement agreement.
func epochExempt(op wire.Op) bool {
	switch op {
	case wire.OpPing, wire.OpStats, wire.OpRingGet, wire.OpRingUpdate,
		wire.OpFlush, wire.OpScan:
		return true
	default:
		return false
	}
}

func (s *Server) dispatch(req *wire.Request) *wire.Response {
	// Membership epoch gate (DESIGN §13): a data request stamped with
	// an epoch other than ours was placed against a different ring.
	// Reject it with our encoded view — a stale sender adopts it and
	// retries; a newer sender pushes its view (OpRingUpdate) first.
	// Epoch 0 marks an epoch-unaware sender (peer chunk traffic,
	// legacy tools) and is always accepted: those requests are
	// address-directed, not placement-derived.
	if req.Epoch != 0 && !epochExempt(req.Op) {
		if cur := s.view.Current(); req.Epoch != cur.Epoch {
			return &wire.Response{Status: wire.StatusWrongEpoch, Value: cur.Encode()}
		}
	}
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpRingGet:
		return &wire.Response{Status: wire.StatusOK, Value: s.view.Current().Encode()}
	case wire.OpRingUpdate:
		v, err := membership.Decode(req.Value)
		if err != nil {
			return errorResponse(err)
		}
		s.view.Adopt(v)
		// Answer with the now-current view: the pusher learns whether it
		// was adopted or superseded by something even newer.
		return &wire.Response{Status: wire.StatusOK, Value: s.view.Current().Encode()}
	case wire.OpSet, wire.OpSetChunk:
		// Meta.Stripe doubles as the item version (chunk writes already
		// carry their stripe there; whole-value writers mint one the same
		// way), so every replica of a logical write stores one CAS token.
		if err := s.store.SetVersioned(req.Key, req.Value, time.Duration(req.TTLSeconds)*time.Second, req.Meta.Stripe); err != nil {
			return errorResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Meta: wire.ECMeta{Stripe: req.Meta.Stripe}}
	case wire.OpGet, wire.OpGetChunk:
		v, version, ttl, ok := s.store.GetMeta(req.Key)
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{
			Status: wire.StatusOK, Value: v,
			Meta: wire.ECMeta{Stripe: version}, TTLSeconds: ttlSeconds(ttl),
		}
	case wire.OpCompareSet:
		return s.handleCompareSet(req)
	case wire.OpApplyDelta:
		return s.handleApplyDelta(req)
	case wire.OpFlush:
		s.store.Flush()
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		// A delete carrying Compare is the atomic conditional delete
		// behind the proxy's `md C<cas>`: it removes the item only while
		// the stored version still equals Compare, under one shard lock
		// (no check-then-delete window).
		if req.Compare != 0 {
			out, prior := s.store.CompareDelete(req.Key, req.Compare)
			resp := &wire.Response{Meta: wire.ECMeta{Stripe: prior}}
			switch out {
			case store.CASStored:
				resp.Status = wire.StatusOK
			case store.CASNotFound:
				resp.Status = wire.StatusNotFound
			default:
				resp.Status = wire.StatusExists
			}
			return resp
		}
		// A delete carrying a stripe ID is conditional: it removes the
		// chunk only if the stored chunk still belongs to that stripe.
		// The client's failed-write unwind uses this so it never deletes
		// a chunk a concurrent newer Set has already overwritten.
		if req.Meta.Stripe != 0 {
			v, ok := s.store.Get(req.Key)
			if !ok {
				return &wire.Response{Status: wire.StatusNotFound}
			}
			if m, _, err := wire.DecodeChunkPayload(v); err == nil && m.Stripe != req.Meta.Stripe {
				// Superseded by a newer write: nothing to unwind.
				return &wire.Response{Status: wire.StatusOK}
			}
			// Matching stripe (or an undecodable chunk, which can only
			// shadow good data): fall through and delete it.
		}
		if !s.store.Delete(req.Key) {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpScan:
		return s.handleScan(req)
	case wire.OpEncodeSet:
		return s.handleEncodeSet(req)
	case wire.OpDecodeGet:
		return s.handleDecodeGet(req)
	case wire.OpBatch:
		return s.handleBatch(req)
	case wire.OpStats:
		// The payload keeps the historical flat store.Stats keys at the
		// top level (old clients keep decoding) and nests the full
		// metrics snapshot under "metrics" for new ones.
		data, err := json.Marshal(struct {
			store.Stats
			Metrics metrics.Snapshot `json:"metrics"`
		}{Stats: s.store.Stats(), Metrics: s.reg.Snapshot()})
		if err != nil {
			return errorResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Value: data}
	default:
		return &wire.Response{Status: wire.StatusError, Value: []byte("unknown op")}
	}
}

// ttlSeconds converts a remaining lifetime to whole seconds for the
// wire, rounding up so an item with 500ms left is not reported as
// never-expiring (0 is the no-expiry sentinel).
func ttlSeconds(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	secs := (ttl + time.Second - 1) / time.Second
	if secs > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(secs)
}

// handleCompareSet implements the conditional write behind the proxy's
// cas/add family. req.Compare is the expected stored version
// (wire.CompareAbsent means the key must be absent) and req.Meta.Stripe
// is the version to install. Chunk-mode requests (Meta.K > 0) tolerate
// a missing chunk — an erasure-coded CAS must be able to re-materialise
// a chunk that one server evicted while the stripe as a whole is still
// readable — and the response's Meta.Stripe reports the prior version
// so the client can tell a genuinely absent stripe from a conflict.
func (s *Server) handleCompareSet(req *wire.Request) *wire.Response {
	allowMissing := req.Meta.K > 0
	ttl := time.Duration(req.TTLSeconds) * time.Second
	out, prior, err := s.store.CompareSwap(req.Key, req.Value, ttl, req.Compare, req.Meta.Stripe, allowMissing)
	if err != nil {
		return errorResponse(err)
	}
	resp := &wire.Response{Meta: wire.ECMeta{Stripe: prior}}
	switch out {
	case store.CASStored:
		resp.Status = wire.StatusOK
	case store.CASNotFound:
		resp.Status = wire.StatusNotFound
	default:
		resp.Status = wire.StatusExists
	}
	return resp
}

// handleApplyDelta patches one stored erasure chunk in place — the
// server side of the delta overwrite path. req.Compare is the stripe
// the patch was computed against, req.Meta.Stripe the new stripe to
// install, and req.Value the sparse XOR patch. The flow is
// read-patch-swap: the chunk is read with its version, patched in a
// private copy (GetMeta copies), and swapped back in only while the
// stored version STILL equals the base stripe — so a concurrent write
// between read and swap loses nothing, and a chunk can never end up a
// blend of two stripes. A version mismatch answers StatusExists with
// the holder's current stripe, exactly like a lost CAS; an absent
// chunk answers StatusNotFound (a delta cannot re-materialise what it
// has nothing to patch). Malformed or mismatched patches are errors
// and leave the chunk untouched.
func (s *Server) handleApplyDelta(req *wire.Request) *wire.Response {
	v, version, _, ok := s.store.GetMeta(req.Key)
	if !ok {
		return &wire.Response{Status: wire.StatusNotFound}
	}
	if version != req.Compare {
		return &wire.Response{Status: wire.StatusExists, Meta: wire.ECMeta{Stripe: version}}
	}
	if err := wire.ApplyDeltaPatch(v, req.Value, req.Meta); err != nil {
		return errorResponse(err)
	}
	ttl := time.Duration(req.TTLSeconds) * time.Second
	out, prior, err := s.store.CompareSwap(req.Key, v, ttl, req.Compare, req.Meta.Stripe, false)
	if err != nil {
		return errorResponse(err)
	}
	switch out {
	case store.CASStored:
		return &wire.Response{Status: wire.StatusOK, Meta: wire.ECMeta{Stripe: req.Meta.Stripe}}
	case store.CASNotFound:
		return &wire.Response{Status: wire.StatusNotFound}
	default:
		return &wire.Response{Status: wire.StatusExists, Meta: wire.ECMeta{Stripe: prior}}
	}
}

// handleScan serves one page of the keyspace: it resumes at the
// request's cursor, walks shards in order (releasing each shard's lock
// between pages — the store's ScanShard contract), and returns the
// keys plus the next cursor. An empty next cursor means the scan is
// complete.
func (s *Server) handleScan(req *wire.Request) *wire.Response {
	cur, err := wire.DecodeScanCursor(req.Value)
	if err != nil {
		return errorResponse(err)
	}
	limit := int(req.Meta.TotalLen)
	if limit <= 0 {
		limit = wire.DefaultScanLimit
	}
	if limit > wire.MaxScanLimit {
		limit = wire.MaxScanLimit
	}
	shard, after := int(cur.Shard), cur.After
	keys := make([]string, 0, limit)
	for shard < s.store.Shards() && len(keys) < limit {
		page := s.store.ScanShard(shard, after, limit-len(keys))
		keys = append(keys, page...)
		if len(keys) < limit {
			// Shard exhausted: move to the next one from its start.
			shard, after = shard+1, ""
			continue
		}
		after = keys[len(keys)-1]
	}
	out := wire.ScanPage{Keys: keys}
	if shard < s.store.Shards() {
		out.Next = wire.EncodeScanCursor(wire.ScanCursor{Shard: uint32(shard), After: after})
	}
	return &wire.Response{Status: wire.StatusOK, Value: wire.EncodeScanPage(out)}
}
