package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ecstore/internal/rpc"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// TestWorkerPoolSaturation floods a 2-worker server with slow
// (EncodeSet) and fast (Ping) requests: everything must complete, and
// backpressure must not deadlock the connection.
func TestWorkerPoolSaturation(t *testing.T) {
	network := transport.NewInproc(transport.Shape{})
	addrs := []string{"s0", "s1", "s2", "s3", "s4"}
	servers := make([]*Server, len(addrs))
	for i, addr := range addrs {
		srv, err := New(Config{
			Addr:    addr,
			Network: network,
			Peers:   addrs,
			Workers: 2,
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		defer srv.Close()
	}
	pool := rpc.NewPool(network)
	defer pool.Close()

	value := bytes.Repeat([]byte("x"), 64<<10)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := pool.Roundtrip("s0", &wire.Request{
					Op: wire.OpEncodeSet, Key: fmt.Sprintf("k-%d-%d", g, i),
					Value: value, Meta: wire.ECMeta{K: 3, M: 2},
				}); err != nil {
					errs <- fmt.Errorf("encode-set: %w", err)
					return
				}
				if _, err := pool.Roundtrip("s1", &wire.Request{Op: wire.OpPing, Key: "p"}); err != nil {
					errs <- fmt.Errorf("ping: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All 64 stripes must be decodable.
	for g := 0; g < 8; g++ {
		resp, err := pool.Roundtrip("s0", &wire.Request{
			Op: wire.OpDecodeGet, Key: fmt.Sprintf("k-%d-0", g), Meta: wire.ECMeta{K: 3, M: 2},
		})
		if err != nil {
			t.Fatalf("decode-get g=%d: %v", g, err)
		}
		if !bytes.Equal(resp.Value, value) {
			t.Fatalf("g=%d: value differs", g)
		}
	}
}

// TestConcurrentEncodeSetSameKey hammers one key with concurrent
// server-side encodes: the final state must be one complete stripe
// (stripe IDs prevent mixing).
func TestConcurrentEncodeSetSameKey(t *testing.T) {
	servers, pool := startServers(t, 5, 0)
	addr := servers[0].Addr()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			value := bytes.Repeat([]byte{byte('A' + w)}, 9000)
			for i := 0; i < 10; i++ {
				_, _ = pool.Roundtrip(addr, &wire.Request{
					Op: wire.OpEncodeSet, Key: "contended", Value: value,
					Meta: wire.ECMeta{K: 3, M: 2},
				})
			}
		}(w)
	}
	wg.Wait()
	resp, err := pool.Roundtrip(addr, &wire.Request{
		Op: wire.OpDecodeGet, Key: "contended", Meta: wire.ECMeta{K: 3, M: 2},
	})
	if err != nil {
		t.Fatalf("decode-get after contention: %v", err)
	}
	if len(resp.Value) != 9000 {
		t.Fatalf("value length %d", len(resp.Value))
	}
	for _, b := range resp.Value {
		if b != resp.Value[0] {
			t.Fatal("torn value: mixed writers in one stripe")
		}
	}
}
