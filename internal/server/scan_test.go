package server

import (
	"fmt"
	"testing"

	"ecstore/internal/wire"
)

// scanServer pages through one server's keyspace over the wire,
// asserting every page respects the requested limit.
func scanServer(t *testing.T, pool interface {
	Roundtrip(string, *wire.Request) (*wire.Response, error)
}, addr string, limit int) []string {
	t.Helper()
	var keys []string
	var cursor []byte
	for pages := 0; ; pages++ {
		if pages > 10000 {
			t.Fatal("scan does not terminate")
		}
		resp, err := pool.Roundtrip(addr, &wire.Request{
			Op: wire.OpScan, Key: "scan", Value: cursor,
			Meta: wire.ECMeta{TotalLen: uint32(limit)},
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		page, err := wire.DecodeScanPage(resp.Value)
		if err != nil {
			t.Fatalf("decode page: %v", err)
		}
		if limit > 0 && len(page.Keys) > limit {
			t.Fatalf("page of %d keys exceeds limit %d", len(page.Keys), limit)
		}
		keys = append(keys, page.Keys...)
		if len(page.Next) == 0 {
			return keys
		}
		cursor = page.Next
	}
}

func TestScanPagination(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	addr := servers[0].Addr()
	want := map[string]bool{}
	for i := 0; i < 137; i++ {
		k := fmt.Sprintf("scan-key-%03d", i)
		if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpSet, Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	for _, limit := range []int{1, 3, 50, 1000} {
		got := scanServer(t, pool, addr, limit)
		if len(got) != len(want) {
			t.Fatalf("limit %d: scan returned %d keys, want %d", limit, len(got), len(want))
		}
		seen := map[string]bool{}
		for _, k := range got {
			if seen[k] {
				t.Fatalf("limit %d: duplicate key %q", limit, k)
			}
			seen[k] = true
			if !want[k] {
				t.Fatalf("limit %d: unknown key %q", limit, k)
			}
		}
	}
}

func TestScanEmptyStore(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	if got := scanServer(t, pool, servers[0].Addr(), 10); len(got) != 0 {
		t.Fatalf("empty store scan returned %q", got)
	}
}

func TestScanDefaultAndClampedLimit(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	addr := servers[0].Addr()
	for i := 0; i < 10; i++ {
		if _, err := pool.Roundtrip(addr, &wire.Request{Op: wire.OpSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	// Limit 0 falls back to the default; an absurd limit is clamped —
	// both still return the whole keyspace.
	if got := scanServer(t, pool, addr, 0); len(got) != 10 {
		t.Fatalf("default-limit scan returned %d keys", len(got))
	}
	if got := scanServer(t, pool, addr, 1<<20); len(got) != 10 {
		t.Fatalf("clamped-limit scan returned %d keys", len(got))
	}
}

func TestScanMalformedCursor(t *testing.T) {
	servers, pool := startServers(t, 1, 0)
	resp, err := pool.Roundtrip(servers[0].Addr(), &wire.Request{
		Op: wire.OpScan, Key: "scan", Value: []byte{1, 2, 3},
	})
	if err == nil {
		t.Fatalf("malformed cursor accepted: %+v", resp)
	}
}
