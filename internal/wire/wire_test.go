package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		ID:         42,
		Op:         OpSetChunk,
		Key:        "user:1234\x00c2",
		Value:      []byte("hello world"),
		TTLSeconds: 3600,
		Meta:       ECMeta{ChunkIndex: 2, K: 3, M: 2, TotalLen: 11},
	}
	got := roundTripRequest(t, req)
	if got.ID != req.ID || got.Op != req.Op || got.Key != req.Key || got.TTLSeconds != 3600 {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(got.Value, req.Value) {
		t.Fatalf("value %q", got.Value)
	}
	if got.Meta != req.Meta {
		t.Fatalf("meta %+v, want %+v", got.Meta, req.Meta)
	}
}

func TestRequestEmptyValue(t *testing.T) {
	got := roundTripRequest(t, &Request{ID: 1, Op: OpGet, Key: "k"})
	if got.Value != nil {
		t.Fatalf("empty value decoded as %v", got.Value)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		ID:     7,
		Status: StatusOK,
		Value:  bytes.Repeat([]byte{0xAB}, 1024),
		Meta:   ECMeta{ChunkIndex: 4, K: 3, M: 2, TotalLen: 3000},
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != resp.ID || got.Status != resp.Status || got.Meta != resp.Meta {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(got.Value, resp.Value) {
		t.Fatal("value differs")
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		req := &Request{ID: uint64(i), Op: OpPing, Key: "k"}
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := 0; i < 10; i++ {
		got, err := ReadRequest(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != uint64(i) {
			t.Fatalf("frame %d has id %d", i, got.ID)
		}
	}
	if _, err := ReadRequest(r); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestOversizeKeyRejected(t *testing.T) {
	req := &Request{ID: 1, Op: OpSet, Key: strings.Repeat("x", MaxKeyLen+1)}
	if err := WriteRequest(io.Discard, req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestOversizeValueRejected(t *testing.T) {
	req := &Request{ID: 1, Op: OpSet, Key: "k", Value: make([]byte, MaxValueLen+1)}
	if err := WriteRequest(io.Discard, req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("request: got %v", err)
	}
	resp := &Response{ID: 1, Status: StatusOK, Value: make([]byte, MaxValueLen+1)}
	if err := WriteResponse(io.Discard, resp); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("response: got %v", err)
	}
}

func TestMalformedFrames(t *testing.T) {
	// Frame claiming a huge length.
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.BigEndian, uint32(MaxValueLen*4))
	if _, err := ReadRequest(bufio.NewReader(&buf)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge frame: %v", err)
	}
	// Frame shorter than a header.
	buf.Reset()
	_ = binary.Write(&buf, binary.BigEndian, uint32(3))
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadRequest(bufio.NewReader(&buf)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short frame: %v", err)
	}
	// Truncated body.
	buf.Reset()
	req := &Request{ID: 1, Op: OpSet, Key: "k", Value: []byte("v")}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(trunc))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: %v", err)
	}
	// Invalid opcode.
	buf.Reset()
	if err := WriteRequest(&buf, &Request{ID: 1, Op: Op(99), Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(bufio.NewReader(&buf)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad opcode: %v", err)
	}
	// Internal length mismatch: valueLen says more than the frame has.
	raw, err := AppendRequest(nil, &Request{ID: 1, Op: OpSet, Key: "k", Value: []byte("vv")})
	if err != nil {
		t.Fatal(err)
	}
	raw = raw[:len(raw)-1]                              // drop a value byte
	binary.BigEndian.PutUint32(raw, uint32(len(raw)-4)) // fix outer length
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(raw))); !errors.Is(err, ErrMalformed) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestRequestQuick(t *testing.T) {
	f := func(id uint64, key string, value []byte, ci, k, m uint8, total uint32) bool {
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		if len(value) > 4096 {
			value = value[:4096]
		}
		req := &Request{
			ID: id, Op: OpSetChunk, Key: key, Value: value,
			Meta: ECMeta{ChunkIndex: ci, K: k, M: m, TotalLen: total},
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.ID == id && got.Key == key && bytes.Equal(got.Value, value) && got.Meta == req.Meta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResponseErr(t *testing.T) {
	cases := []struct {
		resp Response
		want error
	}{
		{Response{Status: StatusOK}, nil},
		{Response{Status: StatusNotFound}, ErrNotFound},
		{Response{Status: StatusOutOfMemory}, ErrOutOfMemory},
	}
	for _, c := range cases {
		if got := c.resp.Err(); !errors.Is(got, c.want) {
			t.Errorf("status %v: err %v, want %v", c.resp.Status, got, c.want)
		}
	}
	errResp := Response{Status: StatusError, Value: []byte("boom")}
	if got := errResp.Err(); got == nil || !strings.Contains(got.Error(), "boom") {
		t.Errorf("error response: %v", got)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	for op := range opNames {
		if op.String() == "" || !op.Valid() {
			t.Errorf("op %d invalid", op)
		}
	}
	if Op(200).Valid() {
		t.Error("Op(200) claims valid")
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("Op(200).String() = %q", Op(200).String())
	}
	if Status(200).String() != "status(200)" {
		t.Errorf("Status(200).String() = %q", Status(200).String())
	}
	if StatusOK.String() != "ok" {
		t.Errorf("StatusOK = %q", StatusOK.String())
	}
}

func TestChunkKeyDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		k := ChunkKey("base", i)
		if seen[k] {
			t.Fatalf("duplicate chunk key %q", k)
		}
		seen[k] = true
		if !strings.HasPrefix(k, "base") {
			t.Fatalf("chunk key %q lost base", k)
		}
	}
	if ChunkKey("a", 1) == ChunkKey("a\x00c", 1) {
		t.Log("note: chunk keys use NUL separator; collision requires NUL in user key")
	}
}
