package wire

import (
	"encoding/binary"
	"fmt"
)

// OpBatch payload layout (all integers big-endian). The batch frame is
// an ordinary request/response frame whose value carries a vector of
// sub-operations, so one pooled frame — one length prefix, one write
// vector, one syscall per direction — replaces per-key frames for the
// bulk APIs. Correlation is positional: sub-response i answers
// sub-request i, and the server always returns exactly one
// sub-response per sub-request.
//
// Batch request value:
//	u32  count
//	count × {
//		u8   op
//		u16  keyLen
//		u8   chunkIndex
//		u8   k
//		u8   m
//		u32  totalLen
//		u64  stripe
//		u32  ttlSeconds
//		u64  compare
//		u32  valueLen
//		...  key bytes
//		...  value bytes
//	}
//
// Batch response value:
//	u32  count
//	count × {
//		u8   status
//		u8   chunkIndex
//		u8   k
//		u8   m
//		u32  totalLen
//		u64  stripe
//		u32  ttlSeconds
//		u32  valueLen
//		...  value bytes
//	}

const (
	// MaxBatchOps caps sub-operations per batch frame, like
	// MaxScanLimit caps scan pages: a corrupt count field must not
	// drive a huge allocation.
	MaxBatchOps = 4096
	// BatchOverhead is the fixed payload prefix (the sub-op count).
	BatchOverhead = 4
	// Per-sub fixed headers. Sub-requests carry no correlation ID
	// (correlation is positional within one frame) and no epoch (the
	// enclosing OpBatch frame's epoch covers every sub-op), so these
	// are independent of the top-level header sizes.
	batchReqFixed  = 1 + 2 + 1 + 1 + 1 + 4 + 8 + 4 + 8 + 4
	batchRespFixed = respHeaderLen - 8
)

// BatchReq is one sub-request of an OpBatch frame: a Request without
// the correlation ID (positional) or a value pool (the batch encoder
// copies sub-values into the shared frame payload).
type BatchReq struct {
	Op         Op
	Key        string
	Value      []byte
	TTLSeconds uint32
	Compare    uint64
	Meta       ECMeta
}

// EncodedSize returns the bytes this sub-request adds to a batch
// payload, for callers planning frame splits against MaxValueLen.
func (r *BatchReq) EncodedSize() int { return batchReqFixed + len(r.Key) + len(r.Value) }

// BatchResp is one sub-response of an OpBatch frame.
type BatchResp struct {
	Status     Status
	Value      []byte
	TTLSeconds uint32
	Meta       ECMeta
}

// EncodedSize returns the bytes this sub-response adds to a batch
// payload.
func (r *BatchResp) EncodedSize() int { return batchRespFixed + len(r.Value) }

// BatchRequestsSize returns the encoded payload size of subs, the
// quantity frame planners compare against MaxValueLen.
func BatchRequestsSize(subs []BatchReq) int {
	size := BatchOverhead
	for i := range subs {
		size += subs[i].EncodedSize()
	}
	return size
}

// AppendBatchRequests serializes subs onto buf and returns the
// extended slice. Each sub is validated against the per-op limits;
// nested batches are rejected (a batch inside a batch has no framing
// justification and would let a hostile payload nest allocations).
// The total encoded payload must fit a single frame value.
func AppendBatchRequests(buf []byte, subs []BatchReq) ([]byte, error) {
	if len(subs) > MaxBatchOps {
		return nil, fmt.Errorf("%w: %d sub-requests (max %d)", ErrFrameTooLarge, len(subs), MaxBatchOps)
	}
	if size := BatchRequestsSize(subs); size > MaxValueLen {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrFrameTooLarge, size)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(subs)))
	for i := range subs {
		sub := &subs[i]
		if !sub.Op.Valid() || sub.Op == OpBatch {
			return nil, fmt.Errorf("%w: sub-request %d op %v not batchable", ErrMalformed, i, sub.Op)
		}
		if len(sub.Key) > MaxKeyLen {
			return nil, fmt.Errorf("%w: sub-request %d key %d bytes", ErrFrameTooLarge, i, len(sub.Key))
		}
		if len(sub.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: sub-request %d value %d bytes", ErrFrameTooLarge, i, len(sub.Value))
		}
		buf = append(buf, byte(sub.Op))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(sub.Key)))
		buf = append(buf, sub.Meta.ChunkIndex, sub.Meta.K, sub.Meta.M)
		buf = binary.BigEndian.AppendUint32(buf, sub.Meta.TotalLen)
		buf = binary.BigEndian.AppendUint64(buf, sub.Meta.Stripe)
		buf = binary.BigEndian.AppendUint32(buf, sub.TTLSeconds)
		buf = binary.BigEndian.AppendUint64(buf, sub.Compare)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Value)))
		buf = append(buf, sub.Key...)
		buf = append(buf, sub.Value...)
	}
	return buf, nil
}

// DecodeBatchRequests parses a batch request payload. Keys are copied
// (they become map keys and outlive the frame); values alias b, so the
// caller must finish with them — or copy — before releasing the frame
// lease.
func DecodeBatchRequests(b []byte) ([]BatchReq, error) {
	count, rest, err := batchCount(b)
	if err != nil {
		return nil, err
	}
	subs := make([]BatchReq, count)
	for i := range subs {
		if len(rest) < batchReqFixed {
			return nil, fmt.Errorf("%w: batch sub-request %d truncated", ErrMalformed, i)
		}
		sub := &subs[i]
		sub.Op = Op(rest[0])
		keyLen := int(binary.BigEndian.Uint16(rest[1:3]))
		sub.Meta = ECMeta{
			ChunkIndex: rest[3],
			K:          rest[4],
			M:          rest[5],
			TotalLen:   binary.BigEndian.Uint32(rest[6:10]),
			Stripe:     binary.BigEndian.Uint64(rest[10:18]),
		}
		sub.TTLSeconds = binary.BigEndian.Uint32(rest[18:22])
		sub.Compare = binary.BigEndian.Uint64(rest[22:30])
		valueLen := int(binary.BigEndian.Uint32(rest[30:34]))
		if !sub.Op.Valid() || sub.Op == OpBatch || keyLen > MaxKeyLen || valueLen > MaxValueLen {
			return nil, fmt.Errorf("%w: batch sub-request %d header", ErrMalformed, i)
		}
		rest = rest[batchReqFixed:]
		if len(rest) < keyLen+valueLen {
			return nil, fmt.Errorf("%w: batch sub-request %d body truncated", ErrMalformed, i)
		}
		sub.Key = string(rest[:keyLen])
		if valueLen > 0 {
			sub.Value = rest[keyLen : keyLen+valueLen]
		}
		rest = rest[keyLen+valueLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch requests", ErrMalformed, len(rest))
	}
	return subs, nil
}

// AppendBatchResponses serializes subs onto buf and returns the
// extended slice. The total payload must fit a single frame value —
// callers whose aggregate response outgrows the frame report a
// whole-frame error instead, and the client re-sends in smaller
// batches.
func AppendBatchResponses(buf []byte, subs []BatchResp) ([]byte, error) {
	if len(subs) > MaxBatchOps {
		return nil, fmt.Errorf("%w: %d sub-responses (max %d)", ErrFrameTooLarge, len(subs), MaxBatchOps)
	}
	size := BatchOverhead
	for i := range subs {
		size += subs[i].EncodedSize()
	}
	if size > MaxValueLen {
		return nil, fmt.Errorf("%w: batch response payload %d bytes", ErrFrameTooLarge, size)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(subs)))
	for i := range subs {
		sub := &subs[i]
		if len(sub.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: sub-response %d value %d bytes", ErrFrameTooLarge, i, len(sub.Value))
		}
		buf = append(buf, byte(sub.Status))
		buf = append(buf, sub.Meta.ChunkIndex, sub.Meta.K, sub.Meta.M)
		buf = binary.BigEndian.AppendUint32(buf, sub.Meta.TotalLen)
		buf = binary.BigEndian.AppendUint64(buf, sub.Meta.Stripe)
		buf = binary.BigEndian.AppendUint32(buf, sub.TTLSeconds)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(sub.Value)))
		buf = append(buf, sub.Value...)
	}
	return buf, nil
}

// DecodeBatchResponses parses a batch response payload. Values alias
// b: callers copy out whatever escapes before releasing the frame.
func DecodeBatchResponses(b []byte) ([]BatchResp, error) {
	count, rest, err := batchCount(b)
	if err != nil {
		return nil, err
	}
	subs := make([]BatchResp, count)
	for i := range subs {
		if len(rest) < batchRespFixed {
			return nil, fmt.Errorf("%w: batch sub-response %d truncated", ErrMalformed, i)
		}
		sub := &subs[i]
		sub.Status = Status(rest[0])
		sub.Meta = ECMeta{
			ChunkIndex: rest[1],
			K:          rest[2],
			M:          rest[3],
			TotalLen:   binary.BigEndian.Uint32(rest[4:8]),
			Stripe:     binary.BigEndian.Uint64(rest[8:16]),
		}
		sub.TTLSeconds = binary.BigEndian.Uint32(rest[16:20])
		valueLen := int(binary.BigEndian.Uint32(rest[20:24]))
		if valueLen > MaxValueLen {
			return nil, fmt.Errorf("%w: batch sub-response %d header", ErrMalformed, i)
		}
		rest = rest[batchRespFixed:]
		if len(rest) < valueLen {
			return nil, fmt.Errorf("%w: batch sub-response %d body truncated", ErrMalformed, i)
		}
		if valueLen > 0 {
			sub.Value = rest[:valueLen]
		}
		rest = rest[valueLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch responses", ErrMalformed, len(rest))
	}
	return subs, nil
}

// batchCount reads and bounds the count prefix shared by both payload
// shapes.
func batchCount(b []byte) (int, []byte, error) {
	if len(b) < BatchOverhead {
		return 0, nil, fmt.Errorf("%w: batch payload %d bytes", ErrMalformed, len(b))
	}
	count := int(binary.BigEndian.Uint32(b[:BatchOverhead]))
	if count > MaxBatchOps {
		return 0, nil, fmt.Errorf("%w: batch count %d (max %d)", ErrMalformed, count, MaxBatchOps)
	}
	return count, b[BatchOverhead:], nil
}

// Err converts a sub-response status into a Go error, mirroring
// Response.Err (nil for StatusOK, typed sentinels where they exist,
// the carried message for StatusError).
func (r *BatchResp) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusOutOfMemory:
		return ErrOutOfMemory
	case StatusExists:
		return ErrExists
	case StatusWrongEpoch:
		return ErrWrongEpoch
	default:
		return fmt.Errorf("wire: server error: %s", r.Value)
	}
}
