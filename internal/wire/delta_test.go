package wire

import (
	"bytes"
	"testing"
)

func TestDeltaPatchRoundTrip(t *testing.T) {
	cases := [][]DeltaRun{
		nil, // empty patch: an untouched shard still bumps its stripe
		{{Offset: 0, Data: []byte{1}}},
		{{Offset: 7, Data: []byte("abc")}, {Offset: 100, Data: bytes.Repeat([]byte{9}, 50)}},
		{{Offset: 4090, Data: []byte{0xFF, 0, 0xFF}}},
	}
	for i, runs := range cases {
		payload := EncodeDeltaPatch(4096, runs)
		if len(payload) != DeltaPatchSize(runs) {
			t.Fatalf("case %d: encoded %d bytes, DeltaPatchSize says %d", i, len(payload), DeltaPatchSize(runs))
		}
		shardLen, got, err := DecodeDeltaPatch(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if shardLen != 4096 {
			t.Fatalf("case %d: shardLen %d", i, shardLen)
		}
		if len(got) != len(runs) {
			t.Fatalf("case %d: %d runs round-tripped to %d", i, len(runs), len(got))
		}
		for j := range runs {
			if got[j].Offset != runs[j].Offset || !bytes.Equal(got[j].Data, runs[j].Data) {
				t.Fatalf("case %d run %d: %+v != %+v", i, j, got[j], runs[j])
			}
		}
	}
}

func TestDeltaPatchRejectsCorruption(t *testing.T) {
	payload := EncodeDeltaPatch(64, []DeltaRun{{Offset: 3, Data: []byte{1, 2, 3}}})
	for i := range payload {
		bad := append([]byte(nil), payload...)
		bad[i] ^= 0x40
		if _, _, err := DecodeDeltaPatch(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, _, err := DecodeDeltaPatch(payload[:5]); err == nil {
		t.Fatal("truncated patch accepted")
	}
	if _, _, err := DecodeDeltaPatch(nil); err == nil {
		t.Fatal("nil patch accepted")
	}
	// A run reaching outside the declared shard length must be refused
	// at decode time, before any apply.
	outside := EncodeDeltaPatch(4, []DeltaRun{{Offset: 2, Data: []byte{1, 2, 3}}})
	if _, _, err := DecodeDeltaPatch(outside); err == nil {
		t.Fatal("run outside the shard accepted")
	}
}

func TestApplyDeltaPatch(t *testing.T) {
	oldChunk := []byte("the quick brown fox jumps over the lazy dog.!ябж")
	newChunk := append([]byte(nil), oldChunk...)
	newChunk[4], newChunk[5] = 'Q', 'U'
	delta := make([]byte, len(oldChunk))
	for i := range delta {
		delta[i] = oldChunk[i] ^ newChunk[i]
	}
	baseMeta := ECMeta{ChunkIndex: 2, K: 3, M: 2, TotalLen: 120, Stripe: NewStripeID()}
	stored := EncodeChunkPayload(baseMeta, oldChunk)

	newMeta := baseMeta
	newMeta.Stripe = NewStripeID()
	newMeta.TotalLen = 130
	patch := EncodeDeltaPatch(uint32(len(oldChunk)), []DeltaRun{{Offset: 4, Data: delta[4:6]}})
	if err := ApplyDeltaPatch(stored, patch, newMeta); err != nil {
		t.Fatalf("ApplyDeltaPatch: %v", err)
	}
	// The patched payload must be byte-identical to encoding the new
	// chunk under the new stripe from scratch — header, CRC and all.
	want := EncodeChunkPayload(newMeta, newChunk)
	if !bytes.Equal(stored, want) {
		t.Fatal("patched chunk payload differs from a fresh encode of the new chunk")
	}

	// XOR is self-inverse: re-applying the same patch under the base
	// meta restores the original payload exactly — the rollback path.
	if err := ApplyDeltaPatch(stored, patch, baseMeta); err != nil {
		t.Fatalf("rollback apply: %v", err)
	}
	if !bytes.Equal(stored, EncodeChunkPayload(baseMeta, oldChunk)) {
		t.Fatal("rollback did not restore the base payload")
	}
}

func TestApplyDeltaPatchRefusals(t *testing.T) {
	chunk := bytes.Repeat([]byte{5}, 64)
	meta := ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 180, Stripe: NewStripeID()}
	patch := EncodeDeltaPatch(64, []DeltaRun{{Offset: 0, Data: []byte{1}}})

	// Corrupt stored chunk: the base CRC no longer matches, so patching
	// it would poison the stripe with garbage that carries a VALID new
	// CRC. Must refuse.
	stored := EncodeChunkPayload(meta, chunk)
	stored[30] ^= 0xFF
	if err := ApplyDeltaPatch(stored, patch, meta); err == nil {
		t.Fatal("patched a corrupt base chunk")
	}

	// Geometry mismatch: a patch addressed to another chunk index / code
	// shape never touches this chunk.
	for _, wrong := range []ECMeta{
		{ChunkIndex: 2, K: 3, M: 2, Stripe: meta.Stripe},
		{ChunkIndex: 1, K: 4, M: 2, Stripe: meta.Stripe},
		{ChunkIndex: 1, K: 3, M: 1, Stripe: meta.Stripe},
	} {
		stored := EncodeChunkPayload(meta, chunk)
		before := append([]byte(nil), stored...)
		if err := ApplyDeltaPatch(stored, patch, wrong); err == nil {
			t.Fatalf("geometry mismatch %+v accepted", wrong)
		}
		if !bytes.Equal(stored, before) {
			t.Fatalf("geometry mismatch %+v modified the chunk", wrong)
		}
	}

	// Shard-length mismatch: a patch built for a different shard size.
	stored = EncodeChunkPayload(meta, chunk)
	if err := ApplyDeltaPatch(stored, EncodeDeltaPatch(128, nil), meta); err == nil {
		t.Fatal("shard-length mismatch accepted")
	}

	// Not a chunk payload at all.
	if err := ApplyDeltaPatch([]byte("plain value"), patch, meta); err == nil {
		t.Fatal("patched a non-chunk payload")
	}
}
