package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ecstore/internal/bufpool"
	"ecstore/internal/gf256"
)

// Delta patch payload — the Value of an OpApplyDelta request. It
// carries the sparse XOR runs for ONE chunk of a stripe:
//
//	magic(1) shardLen(4) runCount(4)
//	runCount x [offset(4) length(4) bytes]
//	crc32(4) over everything before it
//
// shardLen is the length of the chunk the patch applies to; a holder
// whose chunk has a different shard size rejects the patch (the
// overwrite crossed a shard-size boundary and the client should not
// have taken the delta path). The trailing CRC covers the patch itself
// — transport/storage integrity for the runs. The patched chunk's own
// CRC is recomputed by the applier, so a chunk produced by ApplyDeltaPatch
// is byte-identical (header included) to one produced by re-encoding
// the new value.
const (
	deltaMagic      = 0xED
	deltaHeaderLen  = 1 + 4 + 4
	deltaRunHdrLen  = 4 + 4
	deltaTrailerLen = 4
)

// DeltaRun is one contiguous XOR range of a delta patch.
type DeltaRun struct {
	Offset uint32
	Data   []byte
}

// DeltaPatchSize returns the encoded size of a patch with the given
// runs — what one OpApplyDelta frame carries as its value.
func DeltaPatchSize(runs []DeltaRun) int {
	n := deltaHeaderLen + deltaTrailerLen
	for _, r := range runs {
		n += deltaRunHdrLen + len(r.Data)
	}
	return n
}

// EncodeDeltaPatch serializes a delta patch for a chunk of shardLen
// bytes.
func EncodeDeltaPatch(shardLen uint32, runs []DeltaRun) []byte {
	return encodeDeltaPatch(make([]byte, DeltaPatchSize(runs)), shardLen, runs)
}

// EncodeDeltaPatchPooled is EncodeDeltaPatch into a buffer leased from
// pool; hand it back via Request.ValuePool as with chunk payloads. A
// nil pool falls back to plain allocation.
func EncodeDeltaPatchPooled(pool *bufpool.Pool, shardLen uint32, runs []DeltaRun) []byte {
	if pool == nil {
		return EncodeDeltaPatch(shardLen, runs)
	}
	return encodeDeltaPatch(pool.GetRaw(DeltaPatchSize(runs)), shardLen, runs)
}

func encodeDeltaPatch(out []byte, shardLen uint32, runs []DeltaRun) []byte {
	out[0] = deltaMagic
	binary.BigEndian.PutUint32(out[1:5], shardLen)
	binary.BigEndian.PutUint32(out[5:9], uint32(len(runs)))
	p := deltaHeaderLen
	for _, r := range runs {
		binary.BigEndian.PutUint32(out[p:], r.Offset)
		binary.BigEndian.PutUint32(out[p+4:], uint32(len(r.Data)))
		copy(out[p+deltaRunHdrLen:], r.Data)
		p += deltaRunHdrLen + len(r.Data)
	}
	binary.BigEndian.PutUint32(out[p:], crc32.ChecksumIEEE(out[:p]))
	return out[:p+deltaTrailerLen]
}

// DecodeDeltaPatch parses and CRC-verifies a delta patch. The returned
// runs alias payload.
func DecodeDeltaPatch(payload []byte) (shardLen uint32, runs []DeltaRun, err error) {
	if len(payload) < deltaHeaderLen+deltaTrailerLen || payload[0] != deltaMagic {
		return 0, nil, fmt.Errorf("%w: not a delta patch", ErrMalformed)
	}
	body := payload[:len(payload)-deltaTrailerLen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(payload[len(body):]) {
		return 0, nil, fmt.Errorf("%w: delta patch CRC mismatch", ErrMalformed)
	}
	shardLen = binary.BigEndian.Uint32(payload[1:5])
	count := binary.BigEndian.Uint32(payload[5:9])
	p := deltaHeaderLen
	runs = make([]DeltaRun, 0, count)
	for i := uint32(0); i < count; i++ {
		if p+deltaRunHdrLen > len(body) {
			return 0, nil, fmt.Errorf("%w: delta patch truncated at run %d", ErrMalformed, i)
		}
		off := binary.BigEndian.Uint32(body[p:])
		length := binary.BigEndian.Uint32(body[p+4:])
		p += deltaRunHdrLen
		if uint64(p)+uint64(length) > uint64(len(body)) {
			return 0, nil, fmt.Errorf("%w: delta run %d overruns patch", ErrMalformed, i)
		}
		if uint64(off)+uint64(length) > uint64(shardLen) {
			return 0, nil, fmt.Errorf("%w: delta run %d outside shard", ErrMalformed, i)
		}
		runs = append(runs, DeltaRun{Offset: off, Data: body[p : p+int(length)]})
		p += int(length)
	}
	if p != len(body) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes in delta patch", ErrMalformed, len(body)-p)
	}
	return shardLen, runs, nil
}

// ApplyDeltaPatch applies an encoded patch to a stored chunk payload in
// place, enforcing the invariants that make a mixed-version stripe
// impossible to commit through the delta path:
//
//   - the stored payload must be a well-formed chunk whose CRC matches
//     (a corrupt base would silently poison the whole stripe);
//   - its geometry (index, K, M) must match the request's, and its
//     shard length the patch's — a patch built for a different layout
//     never touches the chunk;
//   - every run must fall inside the chunk.
//
// On success the chunk bytes are XOR-patched and the header restamped
// with meta's stripe ID and total length plus a freshly computed CRC —
// byte-identical to the chunk a full re-encode of the new value would
// store. The version-conditional swap (did any concurrent write move
// the chunk since it was read?) is the caller's job.
func ApplyDeltaPatch(stored []byte, patch []byte, meta ECMeta) error {
	m, chunk, err := DecodeChunkPayload(stored)
	if err != nil {
		return err
	}
	if m.ChunkIndex != meta.ChunkIndex || m.K != meta.K || m.M != meta.M {
		return fmt.Errorf("%w: delta geometry mismatch: stored %d/%d+%d, patch %d/%d+%d",
			ErrMalformed, m.ChunkIndex, m.K, m.M, meta.ChunkIndex, meta.K, meta.M)
	}
	shardLen, runs, err := DecodeDeltaPatch(patch)
	if err != nil {
		return err
	}
	if int(shardLen) != len(chunk) {
		return fmt.Errorf("%w: delta for %d-byte shard, chunk has %d", ErrMalformed, shardLen, len(chunk))
	}
	for _, r := range runs {
		dst := chunk[r.Offset : int(r.Offset)+len(r.Data)] // bounds proven by DecodeDeltaPatch
		gf256.AddSlice(r.Data, dst)
	}
	binary.BigEndian.PutUint32(stored[4:8], meta.TotalLen)
	binary.BigEndian.PutUint64(stored[8:16], meta.Stripe)
	binary.BigEndian.PutUint32(stored[16:20], crc32.ChecksumIEEE(chunk))
	return nil
}

// ChunkPayloadOverhead is the per-chunk header size a stored chunk
// payload adds on top of the shard bytes — exported so clients can
// account wire bytes without re-deriving the layout.
const ChunkPayloadOverhead = chunkHeaderLen
