package wire

import (
	"io"
	"net"

	"ecstore/internal/bufpool"
)

// FrameInlineThreshold is the value size at or below which the frame
// encoder copies the value into the (pooled) header buffer so the
// whole frame is one contiguous vector. Larger values are carried as a
// second scatter-gather vector and never copied: a 1 MB chunk write
// costs a ~50-byte header encode, not a 1 MB memcpy.
const FrameInlineThreshold = 4 << 10

// Frame is one encoded wire frame ready for transmission: a pooled
// header vector (length prefix, fixed header, key, and any inlined
// value) plus an optional value vector aliasing the caller's payload.
// Frames are produced by EncodeRequestFrame/EncodeResponseFrame,
// written by a FrameQueue (or WriteTo), and returned to their pool
// with Release — exactly once, by whoever owns the frame when it is
// written or abandoned.
type Frame struct {
	hdr, val         []byte
	hdrPool, valPool *bufpool.Pool
}

// Len returns the total encoded size of the frame in bytes.
func (f *Frame) Len() int { return len(f.hdr) + len(f.val) }

// Vectors returns the frame's wire vectors: the header (never empty)
// and the non-inlined value (nil when the value was inlined or absent).
func (f *Frame) Vectors() ([]byte, []byte) { return f.hdr, f.val }

// WriteTo writes the frame to w as one vectored write (writev on TCP
// connections via net.Buffers).
func (f *Frame) WriteTo(w io.Writer) (int64, error) {
	if len(f.val) == 0 {
		n, err := w.Write(f.hdr)
		return int64(n), err
	}
	bufs := net.Buffers{f.hdr, f.val}
	return bufs.WriteTo(w)
}

// Release returns the frame's pooled buffers. Idempotent; the frame
// must not be written after Release.
func (f *Frame) Release() {
	if f.hdrPool != nil {
		f.hdrPool.Put(f.hdr)
		f.hdrPool = nil
	}
	if f.valPool != nil {
		f.valPool.Put(f.val)
		f.valPool = nil
	}
	f.hdr, f.val = nil, nil
}

// EncodeRequestFrame encodes req into a Frame whose header buffer is
// leased from pool. Values at or below FrameInlineThreshold are copied
// into the header buffer; larger values alias req.Value as a second
// vector. If req.ValuePool is set, ownership of the value lease
// transfers to the frame: an inlined value is released immediately
// (it has been copied), a vectored one is released by Frame.Release
// after the frame is written or abandoned. A nil pool allocates
// plainly (the frame still works; Release is then a partial no-op).
func EncodeRequestFrame(pool *bufpool.Pool, req *Request) (Frame, error) {
	if err := checkRequestSize(req); err != nil {
		req.ReleaseValue()
		return Frame{}, err
	}
	inline := len(req.Value) <= FrameInlineThreshold
	hdrLen := 4 + reqHeaderLen + len(req.Key)
	if inline {
		hdrLen += len(req.Value)
	}
	f := Frame{hdr: getRawFrom(pool, hdrLen), hdrPool: pool}
	f.hdr = appendRequestHeader(f.hdr[:0], req)
	if inline {
		f.hdr = append(f.hdr, req.Value...)
		req.ReleaseValue()
	} else {
		f.val = req.Value
		f.valPool = req.ValuePool
		req.ValuePool = nil
	}
	return f, nil
}

// EncodeResponseFrame is EncodeRequestFrame for responses. Response
// values are always owned by the response (never pool-leased), so the
// value vector is aliased without a transfer of ownership.
func EncodeResponseFrame(pool *bufpool.Pool, resp *Response) (Frame, error) {
	if len(resp.Value) > MaxValueLen {
		return Frame{}, ErrFrameTooLarge
	}
	inline := len(resp.Value) <= FrameInlineThreshold
	hdrLen := 4 + respHeaderLen
	if inline {
		hdrLen += len(resp.Value)
	}
	f := Frame{hdr: getRawFrom(pool, hdrLen), hdrPool: pool}
	f.hdr = appendResponseHeader(f.hdr[:0], resp)
	if inline {
		f.hdr = append(f.hdr, resp.Value...)
	} else {
		f.val = resp.Value
	}
	return f, nil
}

// getRawFrom leases n bytes from pool, or allocates when pool is nil.
func getRawFrom(pool *bufpool.Pool, n int) []byte {
	if pool == nil {
		return make([]byte, n)
	}
	return pool.GetRaw(n)
}
