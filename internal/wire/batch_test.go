package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func sampleBatchReqs() []BatchReq {
	return []BatchReq{
		{Op: OpGet, Key: "plain"},
		{Op: OpSet, Key: "write", Value: []byte("payload"), TTLSeconds: 30},
		{
			Op: OpSetChunk, Key: ChunkKey("striped", 3),
			Value: bytes.Repeat([]byte{0xAB}, 1000),
			Meta:  ECMeta{ChunkIndex: 3, K: 3, M: 2, TotalLen: 2900, Stripe: 0xDEADBEEF},
		},
		{Op: OpCompareSet, Key: "cas", Value: []byte("v2"), Compare: 42, Meta: ECMeta{Stripe: 43}},
		{Op: OpDelete, Key: "gone", Meta: ECMeta{Stripe: 7}},
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	in := sampleBatchReqs()
	buf, err := AppendBatchRequests(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != BatchRequestsSize(in) {
		t.Fatalf("encoded %d bytes, BatchRequestsSize says %d", len(buf), BatchRequestsSize(in))
	}
	out, err := DecodeBatchRequests(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d subs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || out[i].Key != in[i].Key ||
			!bytes.Equal(out[i].Value, in[i].Value) ||
			out[i].TTLSeconds != in[i].TTLSeconds ||
			out[i].Compare != in[i].Compare || out[i].Meta != in[i].Meta {
			t.Fatalf("sub %d differs: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	in := []BatchResp{
		{Status: StatusOK, Value: []byte("hello"), TTLSeconds: 9, Meta: ECMeta{Stripe: 11}},
		{Status: StatusNotFound},
		{Status: StatusError, Value: []byte("boom")},
		{Status: StatusExists, Meta: ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 64, Stripe: 5}},
	}
	buf, err := AppendBatchResponses(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatchResponses(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d subs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Status != in[i].Status || !bytes.Equal(out[i].Value, in[i].Value) ||
			out[i].TTLSeconds != in[i].TTLSeconds || out[i].Meta != in[i].Meta {
			t.Fatalf("sub %d differs: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	buf, err := AppendBatchRequests(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := DecodeBatchRequests(buf)
	if err != nil || len(subs) != 0 {
		t.Fatalf("got %v, %v", subs, err)
	}
}

func TestBatchRejectsNestedBatch(t *testing.T) {
	if _, err := AppendBatchRequests(nil, []BatchReq{{Op: OpBatch, Key: "k"}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode nested batch: %v", err)
	}
	// Hand-craft the same thing so the decoder is exercised too.
	buf := binary.BigEndian.AppendUint32(nil, 1)
	buf = append(buf, byte(OpBatch))
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = append(buf, make([]byte, batchReqFixed-3)...)
	buf[4+batchReqFixed-4] = 0 // valueLen = 0 (already zero; explicit)
	buf = append(buf, 'k')
	if _, err := DecodeBatchRequests(buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode nested batch: %v", err)
	}
}

func TestBatchEncodeLimits(t *testing.T) {
	if _, err := AppendBatchRequests(nil, make([]BatchReq, MaxBatchOps+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-count: %v", err)
	}
	longKey := strings.Repeat("k", MaxKeyLen+1)
	if _, err := AppendBatchRequests(nil, []BatchReq{{Op: OpGet, Key: longKey}}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-long key: %v", err)
	}
	// Aggregate payload over MaxValueLen must be rejected even when
	// every sub is individually legal.
	big := make([]byte, MaxValueLen/2)
	subs := []BatchReq{
		{Op: OpSet, Key: "a", Value: big},
		{Op: OpSet, Key: "b", Value: big},
		{Op: OpSet, Key: "c", Value: big},
	}
	if _, err := AppendBatchRequests(nil, subs); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("aggregate overflow: %v", err)
	}
}

func TestBatchDecodeMalformed(t *testing.T) {
	good, err := AppendBatchRequests(nil, sampleBatchReqs())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short payload":  good[:2],
		"truncated sub":  good[:len(good)-3],
		"trailing bytes": append(append([]byte(nil), good...), 0xFF),
		"huge count":     binary.BigEndian.AppendUint32(nil, MaxBatchOps+1),
		"count past end": binary.BigEndian.AppendUint32(nil, 9),
	}
	for name, b := range cases {
		if _, err := DecodeBatchRequests(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
	goodResp, err := AppendBatchResponses(nil, []BatchResp{{Status: StatusOK, Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	respCases := map[string][]byte{
		"short payload":  goodResp[:3],
		"truncated sub":  goodResp[:len(goodResp)-1],
		"trailing bytes": append(append([]byte(nil), goodResp...), 0x00),
	}
	for name, b := range respCases {
		if _, err := DecodeBatchResponses(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("resp %s: got %v, want ErrMalformed", name, err)
		}
	}
}

func TestBatchRespErr(t *testing.T) {
	cases := []struct {
		resp BatchResp
		want error
	}{
		{BatchResp{Status: StatusOK}, nil},
		{BatchResp{Status: StatusNotFound}, ErrNotFound},
		{BatchResp{Status: StatusOutOfMemory}, ErrOutOfMemory},
		{BatchResp{Status: StatusExists}, ErrExists},
	}
	for _, c := range cases {
		if err := c.resp.Err(); !errors.Is(err, c.want) {
			t.Errorf("status %v: got %v, want %v", c.resp.Status, err, c.want)
		}
	}
	if err := (&BatchResp{Status: StatusError, Value: []byte("kaput")}).Err(); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("StatusError: got %v", err)
	}
}

// FuzzBatchCodec round-trips the batch payload decoders: any input the
// request or response decoder accepts must re-encode to an equivalent
// payload, and no input may panic or over-allocate.
func FuzzBatchCodec(f *testing.F) {
	seed, _ := AppendBatchRequests(nil, sampleBatchReqs())
	f.Add(seed, true)
	respSeed, _ := AppendBatchResponses(nil, []BatchResp{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusError, Value: []byte("oops")},
	})
	f.Add(respSeed, false)
	f.Add([]byte{}, true)
	f.Add(binary.BigEndian.AppendUint32(nil, 0), false)
	f.Fuzz(func(t *testing.T, data []byte, asRequest bool) {
		if len(data) > MaxValueLen {
			// A payload this size could never arrive in one frame, and
			// re-encoding it would trip the aggregate limit by design.
			return
		}
		if asRequest {
			subs, err := DecodeBatchRequests(data)
			if err != nil {
				return
			}
			re, err := AppendBatchRequests(nil, subs)
			if err != nil {
				t.Fatalf("decoded batch did not re-encode: %v", err)
			}
			again, err := DecodeBatchRequests(re)
			if err != nil || len(again) != len(subs) {
				t.Fatalf("re-decode: %v (%d vs %d subs)", err, len(again), len(subs))
			}
			return
		}
		subs, err := DecodeBatchResponses(data)
		if err != nil {
			return
		}
		re, err := AppendBatchResponses(nil, subs)
		if err != nil {
			t.Fatalf("decoded batch did not re-encode: %v", err)
		}
		if _, err := DecodeBatchResponses(re); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
