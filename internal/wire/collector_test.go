package wire

import (
	"testing"
)

func addChunk(c *ChunkCollector, stripe uint64, idx int, body byte) {
	c.Add(ECMeta{ChunkIndex: uint8(idx), K: 3, M: 2, TotalLen: 10, Stripe: stripe}, []byte{body})
}

func TestCollectorSingleStripe(t *testing.T) {
	c := NewChunkCollector(3, 5)
	if c.Decodable() {
		t.Fatal("empty collector decodable")
	}
	addChunk(c, 7, 0, 'a')
	addChunk(c, 7, 1, 'b')
	if c.Decodable() {
		t.Fatal("2 of 3 chunks decodable")
	}
	addChunk(c, 7, 4, 'e')
	if !c.Decodable() {
		t.Fatal("3 chunks not decodable")
	}
	stripe, totalLen, chunks, ok := c.Best()
	if !ok || stripe != 7 || totalLen != 10 {
		t.Fatalf("Best = %d %d %v", stripe, totalLen, ok)
	}
	if chunks[0] == nil || chunks[1] == nil || chunks[4] == nil || chunks[2] != nil {
		t.Fatalf("chunk layout wrong: %v", chunks)
	}
	if c.Seen() != 3 {
		t.Fatalf("Seen = %d", c.Seen())
	}
}

func TestCollectorPrefersMostCompleteStripe(t *testing.T) {
	c := NewChunkCollector(3, 5)
	// Old stripe (id 100) has 4 chunks; new stripe (id 200) has 3.
	for i := 0; i < 4; i++ {
		addChunk(c, 100, i, 'o')
	}
	for i := 0; i < 3; i++ {
		addChunk(c, 200, i, 'n')
	}
	stripe, _, _, ok := c.Best()
	if !ok || stripe != 100 {
		t.Fatalf("Best stripe = %d, want the more complete 100", stripe)
	}
}

func TestCollectorTieBreaksToNewerStripe(t *testing.T) {
	c := NewChunkCollector(3, 5)
	for i := 0; i < 3; i++ {
		addChunk(c, 100, i, 'o')
		addChunk(c, 200, i, 'n')
	}
	stripe, _, _, ok := c.Best()
	if !ok || stripe != 200 {
		t.Fatalf("Best stripe = %d, want the newer 200 on a tie", stripe)
	}
}

func TestCollectorNoDecodableStripe(t *testing.T) {
	c := NewChunkCollector(3, 5)
	// Two chunks each of two stripes: 4 chunks total but no stripe
	// reaches K = 3 — the torn state grouped decoding must reject.
	addChunk(c, 100, 0, 'o')
	addChunk(c, 100, 1, 'o')
	addChunk(c, 200, 2, 'n')
	addChunk(c, 200, 3, 'n')
	if c.Decodable() {
		t.Fatal("mixed stripes reported decodable")
	}
	if _, _, _, ok := c.Best(); ok {
		t.Fatal("Best returned a group below K")
	}
	if c.Seen() != 4 {
		t.Fatalf("Seen = %d", c.Seen())
	}
}

func TestCollectorIgnoresDuplicatesAndBadIndexes(t *testing.T) {
	c := NewChunkCollector(3, 5)
	addChunk(c, 1, 0, 'a')
	addChunk(c, 1, 0, 'X')                                           // duplicate index: first wins
	c.Add(ECMeta{ChunkIndex: 9, K: 3, M: 2, Stripe: 1}, []byte{'z'}) // out of range
	if c.Seen() != 1 {
		t.Fatalf("Seen = %d", c.Seen())
	}
	addChunk(c, 1, 1, 'b')
	addChunk(c, 1, 2, 'c')
	_, _, chunks, ok := c.Best()
	if !ok || chunks[0][0] != 'a' {
		t.Fatalf("duplicate overwrote original: %v", chunks[0])
	}
}

func TestNewStripeIDMonotoneAndUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		id := NewStripeID()
		if seen[id] {
			t.Fatalf("duplicate stripe id %d", id)
		}
		seen[id] = true
		if id < prev {
			// Counter wrap within one nanosecond tick can reorder
			// slightly; large regressions indicate breakage.
			if prev-id > 1<<12 {
				t.Fatalf("stripe ids regressed: %d after %d", id, prev)
			}
		}
		prev = id
	}
}
