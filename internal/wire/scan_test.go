package wire

import (
	"reflect"
	"strings"
	"testing"
)

func TestScanCursorRoundtrip(t *testing.T) {
	for _, c := range []ScanCursor{
		{},
		{Shard: 3, After: "some-key"},
		{Shard: 0xFFFF, After: strings.Repeat("k", MaxKeyLen)},
		{Shard: 7, After: "key\x00c3"}, // chunk keys are valid cursor positions
	} {
		got, err := DecodeScanCursor(EncodeScanCursor(c))
		if err != nil {
			t.Fatalf("cursor %+v: %v", c, err)
		}
		if got != c {
			t.Fatalf("cursor roundtrip: got %+v want %+v", got, c)
		}
	}
}

func TestScanCursorEmptyIsZero(t *testing.T) {
	c, err := DecodeScanCursor(nil)
	if err != nil || c != (ScanCursor{}) {
		t.Fatalf("empty cursor: %+v, %v", c, err)
	}
}

func TestScanCursorMalformed(t *testing.T) {
	for _, b := range [][]byte{
		{1, 2, 3},                    // too short
		{0, 0, 0, 1, 0, 5},           // afterLen overruns
		{0, 0, 0, 1, 0, 1, 'a', 'b'}, // trailing bytes
	} {
		if _, err := DecodeScanCursor(b); err == nil {
			t.Fatalf("decoded malformed cursor % x", b)
		}
	}
}

func TestScanPageRoundtrip(t *testing.T) {
	for _, p := range []ScanPage{
		{},
		{Keys: []string{"a"}},
		{Keys: []string{"a", "b\x00c0", strings.Repeat("x", MaxKeyLen)}},
		{Keys: []string{"k1", "k2"}, Next: EncodeScanCursor(ScanCursor{Shard: 2, After: "k2"})},
		{Next: []byte{0, 0, 0, 0, 0, 0}},
	} {
		got, err := DecodeScanPage(EncodeScanPage(p))
		if err != nil {
			t.Fatalf("page %+v: %v", p, err)
		}
		if len(got.Keys) != len(p.Keys) || (len(p.Keys) > 0 && !reflect.DeepEqual(got.Keys, p.Keys)) {
			t.Fatalf("page keys roundtrip: got %q want %q", got.Keys, p.Keys)
		}
		if string(got.Next) != string(p.Next) {
			t.Fatalf("page next roundtrip: got %q want %q", got.Next, p.Next)
		}
	}
}

func TestScanPageMalformed(t *testing.T) {
	good := EncodeScanPage(ScanPage{Keys: []string{"alpha", "beta"}})
	for name, b := range map[string][]byte{
		"empty":          {},
		"short":          {0, 0, 0},
		"truncated-keys": good[:len(good)-3],
		"trailing":       append(append([]byte{}, good...), 0xEE),
		"cursor-overrun": {0, 40, 0, 0, 0, 0},
	} {
		if _, err := DecodeScanPage(b); err == nil {
			t.Fatalf("%s: decoded malformed page % x", name, b)
		}
	}
}

func TestLogicalKey(t *testing.T) {
	for _, tc := range []struct {
		stored  string
		key     string
		isChunk bool
	}{
		{"plain", "plain", false},
		{"k\x00c0", "k", true},
		{"k\x00c12", "k", true},
		{ChunkKey("user:42", 4), "user:42", true},
		{"k\x00c", "k\x00c", false},                         // no index digits
		{"k\x00cx", "k\x00cx", false},                       // non-digit index
		{"weird\x00key", "weird\x00key", false},             // NUL without chunk marker
		{ChunkKey("nested\x00c1", 2), "nested\x00c1", true}, // LastIndex picks the real suffix
	} {
		key, isChunk := LogicalKey(tc.stored)
		if key != tc.key || isChunk != tc.isChunk {
			t.Errorf("LogicalKey(%q) = %q,%v want %q,%v", tc.stored, key, isChunk, tc.key, tc.isChunk)
		}
	}
}

func TestChunkKeyLogicalKeyInverse(t *testing.T) {
	for idx := 0; idx < 20; idx++ {
		stored := ChunkKey("the-key", idx)
		key, isChunk := LogicalKey(stored)
		if !isChunk || key != "the-key" {
			t.Fatalf("LogicalKey(ChunkKey(the-key,%d)) = %q,%v", idx, key, isChunk)
		}
	}
}
