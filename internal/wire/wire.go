// Package wire defines the binary request/response protocol spoken
// between the key-value store client and servers (and between servers
// for the server-side encode/decode schemes). It is a compact
// memcached-binary-protocol-style framing with an extensions block
// carrying the erasure-coding metadata each chunk needs to be
// independently locatable and decodable.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"

	"ecstore/internal/bufpool"
)

// Op identifies a request type.
type Op uint8

// Request opcodes.
const (
	// OpSet stores a whole value under a key.
	OpSet Op = iota + 1
	// OpGet fetches a whole value.
	OpGet
	// OpDelete removes a key.
	OpDelete
	// OpSetChunk stores one erasure-coded chunk (or one replica copy)
	// under a derived chunk key.
	OpSetChunk
	// OpGetChunk fetches one chunk.
	OpGetChunk
	// OpEncodeSet asks the receiving server to split, encode and
	// distribute the value itself (the server-side-encode schemes).
	OpEncodeSet
	// OpDecodeGet asks the receiving server to aggregate chunks from
	// its peers, decode if needed, and return the whole value (the
	// server-side-decode schemes).
	OpDecodeGet
	// OpStats returns server statistics.
	OpStats
	// OpPing is a liveness check.
	OpPing
	// OpScan returns one page of the server's keyspace: the request
	// value carries an opaque cursor (empty to start), Meta.TotalLen
	// carries the page-size limit, and the response value is a ScanPage
	// with the keys and the next cursor. The anti-entropy scrubber is
	// built on this.
	OpScan
	// OpCompareSet is a conditional store: the write lands only when
	// the stored item's version matches Compare (CompareAbsent demands
	// the key not exist). Meta.Stripe carries the version the new item
	// is stored under. With Meta.K > 0 the request targets one erasure
	// chunk, whose absence is tolerated (a lost chunk must not block a
	// CAS of a still-decodable stripe); the response's Meta.Stripe
	// reports the prior version (0 when the chunk was absent).
	OpCompareSet
	// OpFlush empties the receiving server's store (memcached
	// flush_all fan-out).
	OpFlush
	// OpBatch carries a vector of sub-requests in one frame and
	// returns a vector of sub-responses in one frame — the bulk
	// (MGet/MSet/MDelete) wire path. Sub-encodings are defined in
	// batch.go; nested batches are rejected.
	OpBatch
	// OpRingGet returns the server's current membership view (epoch +
	// server set) as an encoded membership payload in the response
	// value. Always served regardless of request epoch — it is how a
	// stale party learns the new ring.
	OpRingGet
	// OpRingUpdate offers the server a membership view in the request
	// value. The server adopts it iff it is strictly newer than its
	// current view, and always answers with its (possibly just
	// updated) current view — adopt-if-newer makes pushes idempotent
	// and safe to fan out. Always served regardless of request epoch.
	OpRingUpdate
	// OpApplyDelta patches one stored erasure chunk in place: the value
	// carries a sparse XOR delta patch (delta.go), Compare the stripe
	// version the patch was computed against, and Meta.Stripe the new
	// stripe ID to install. The server applies the patch only while the
	// stored chunk still belongs to the base stripe — the same
	// version-conditional discipline as OpCompareSet — and answers
	// StatusExists (with the holder's current stripe in Meta.Stripe) on
	// a version mismatch, so a delta can never blend two writes into
	// one chunk.
	OpApplyDelta
)

// CompareAbsent, as OpCompareSet's Compare value, demands that the key
// does not exist (memcached add). Stripe IDs minted by NewStripeID are
// never zero, so the sentinel cannot collide with a real version.
const CompareAbsent uint64 = 0

var opNames = map[Op]string{
	OpSet:        "set",
	OpGet:        "get",
	OpDelete:     "delete",
	OpSetChunk:   "set-chunk",
	OpGetChunk:   "get-chunk",
	OpEncodeSet:  "encode-set",
	OpDecodeGet:  "decode-get",
	OpStats:      "stats",
	OpPing:       "ping",
	OpScan:       "scan",
	OpCompareSet: "compare-set",
	OpFlush:      "flush",
	OpBatch:      "batch",
	OpRingGet:    "ring-get",
	OpRingUpdate: "ring-update",
	OpApplyDelta: "apply-delta",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a known opcode.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}

// Status is a response status code.
type Status uint8

// Response status codes.
const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates the key (or chunk) does not exist.
	StatusNotFound
	// StatusOutOfMemory indicates the store evicted-to-capacity and
	// still could not fit the item.
	StatusOutOfMemory
	// StatusError carries an error message in the response value.
	StatusError
	// StatusExists rejects an OpCompareSet whose Compare did not match
	// the stored version (memcached EXISTS / NOT_STORED semantics).
	StatusExists
	// StatusWrongEpoch rejects a request whose Epoch does not match the
	// server's current membership epoch. The response value carries the
	// server's encoded membership view so the sender can catch up (or,
	// when the sender is ahead, learn that this server needs a push) and
	// re-resolve placement before retrying.
	StatusWrongEpoch
)

var statusNames = map[Status]string{
	StatusOK:          "ok",
	StatusNotFound:    "not-found",
	StatusOutOfMemory: "out-of-memory",
	StatusError:       "error",
	StatusExists:      "exists",
	StatusWrongEpoch:  "wrong-epoch",
}

// String returns the status mnemonic.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Limits protecting against corrupt frames.
const (
	// MaxKeyLen bounds key length, larger than memcached's 250 to
	// accommodate derived chunk keys.
	MaxKeyLen = 512
	// MaxValueLen bounds a single frame's value (16 MB, well above
	// the paper's 1 MB pair sizes).
	MaxValueLen = 16 << 20
)

// Framing errors.
var (
	// ErrFrameTooLarge is returned when a frame exceeds the limits.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limits")
	// ErrMalformed is returned for structurally invalid frames.
	ErrMalformed = errors.New("wire: malformed frame")
)

// ECMeta is the erasure-coding metadata block attached to chunk
// operations so that any server (or a recovering client) can interpret
// a chunk in isolation.
type ECMeta struct {
	// ChunkIndex is this chunk's index in [0, K+M).
	ChunkIndex uint8
	// K is the number of data chunks.
	K uint8
	// M is the number of parity chunks.
	M uint8
	// TotalLen is the original (pre-split) value length in bytes.
	TotalLen uint32
	// Stripe identifies the write that produced this chunk. Chunks
	// from different writes of the same key never mix during decode
	// (stripe atomicity); higher stripe values win when complete
	// groups compete, giving approximate last-write-wins.
	Stripe uint64
}

// Request is a client-to-server (or server-to-server) message.
type Request struct {
	// ID correlates the response on a multiplexed connection.
	ID uint64
	// Op is the operation.
	Op Op
	// Key is the item key (for chunk ops, the derived chunk key).
	Key string
	// Value is the payload for writes; nil for reads.
	Value []byte
	// TTLSeconds is the item lifetime for Set-type operations;
	// 0 means no expiry, as in memcached.
	TTLSeconds uint32
	// Compare is the version an OpCompareSet demands of the stored
	// item (CompareAbsent = the key must not exist). On OpDelete a
	// non-zero Compare makes the delete conditional: it succeeds only
	// while the stored item's version equals Compare (the atomic
	// memcached `md C<cas>`). Zero and ignored for every other op.
	Compare uint64
	// Epoch is the sender's membership epoch. Servers reject data
	// operations whose epoch differs from their own with
	// StatusWrongEpoch (see membership); 0 means epoch-unaware and is
	// always accepted.
	Epoch uint64
	// Meta carries EC metadata for chunk and encode/decode ops.
	Meta ECMeta

	// ValuePool, when non-nil, marks Value as a buffer leased from that
	// pool whose ownership transfers to the wire layer with the request:
	// the frame encoder either copies the value (small values are
	// inlined into the header buffer) and releases the lease
	// immediately, or carries the buffer as a scatter-gather vector and
	// releases it once the frame has been written or abandoned. Senders
	// that pass a ValuePool must not touch Value after handing the
	// request to rpc.Pool.Send — on success OR failure.
	ValuePool *bufpool.Pool

	// lease/pool back a pooled read: Value aliases lease, which Release
	// returns to pool.
	lease []byte
	pool  *bufpool.Pool
}

// Release returns the pooled frame body a ReadRequestPooled call leased
// (Value aliases it) to its pool. It is a safe no-op for requests that
// were not read in pooled mode, and idempotent for those that were.
// Key is a copy and survives Release; Value must not be used after.
func (r *Request) Release() {
	if r == nil || r.lease == nil {
		return
	}
	lease := r.lease
	r.lease, r.Value = nil, nil
	r.pool.Put(lease)
}

// ReleaseValue returns the write-side value lease (ValuePool) without
// sending the request. The rpc layer calls it on failure paths that
// give up before the frame encoder could take ownership; it is a safe
// no-op when no lease is attached.
func (r *Request) ReleaseValue() {
	if r == nil || r.ValuePool == nil {
		return
	}
	pool := r.ValuePool
	r.ValuePool = nil
	pool.Put(r.Value)
	r.Value = nil
}

// Response is a server-to-client message.
type Response struct {
	// ID echoes the request ID.
	ID uint64
	// Status is the outcome.
	Status Status
	// Value is the payload for reads, or the error text when Status
	// is StatusError.
	Value []byte
	// TTLSeconds is the item's remaining lifetime in whole seconds on
	// read responses (0 = no expiry), rounded up so a sub-second
	// remainder never reads as immortal.
	TTLSeconds uint32
	// Meta echoes/propagates EC metadata (a Get of a chunk returns
	// the chunk's stored metadata so the client can decode). For
	// whole-value reads and writes Meta.Stripe carries the item's
	// version — the CAS token of the memcached surface.
	Meta ECMeta

	// lease/pool back a pooled read: Value aliases lease, which Release
	// returns to pool.
	lease []byte
	pool  *bufpool.Pool
}

// Release returns the pooled frame body a ReadResponsePooled call
// leased (Value aliases it) to its pool. It is a safe no-op for
// responses that were not read in pooled mode, and idempotent for
// those that were. Value must not be used after Release; copy first if
// it escapes (e.g. is returned to an application caller).
func (r *Response) Release() {
	if r == nil || r.lease == nil {
		return
	}
	lease := r.lease
	r.lease, r.Value = nil, nil
	r.pool.Put(lease)
}

// Err converts an error response into a Go error (nil for StatusOK and
// a typed sentinel where one exists).
func (r *Response) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusOutOfMemory:
		return ErrOutOfMemory
	case StatusExists:
		return ErrExists
	case StatusWrongEpoch:
		return ErrWrongEpoch
	default:
		return fmt.Errorf("wire: server error: %s", r.Value)
	}
}

// Sentinel errors corresponding to response statuses.
var (
	// ErrNotFound mirrors StatusNotFound.
	ErrNotFound = errors.New("wire: key not found")
	// ErrOutOfMemory mirrors StatusOutOfMemory.
	ErrOutOfMemory = errors.New("wire: server out of memory")
	// ErrExists mirrors StatusExists: the compare-set's expected
	// version did not match the stored item.
	ErrExists = errors.New("wire: version mismatch")
	// ErrWrongEpoch mirrors StatusWrongEpoch: the request's membership
	// epoch differs from the server's. The caller should refresh its
	// view and retry (core.Client does this transparently).
	ErrWrongEpoch = errors.New("wire: membership epoch mismatch")
)

/*
Frame layouts (all integers big-endian):

Request:
	u32  frameLen (bytes after this field)
	u64  id
	u8   op
	u16  keyLen
	u8   chunkIndex
	u8   k
	u8   m
	u32  totalLen
	u64  stripe
	u32  ttlSeconds
	u64  compare
	u64  epoch
	u32  valueLen
	...  key bytes
	...  value bytes

Response:
	u32  frameLen
	u64  id
	u8   status
	u8   chunkIndex
	u8   k
	u8   m
	u32  totalLen
	u64  stripe
	u32  ttlSeconds
	u32  valueLen
	...  value bytes
*/

const (
	reqHeaderLen  = 8 + 1 + 2 + 1 + 1 + 1 + 4 + 8 + 4 + 8 + 8 + 4
	respHeaderLen = 8 + 1 + 1 + 1 + 1 + 4 + 8 + 4 + 4
)

// checkRequestSize validates req against the frame limits.
func checkRequestSize(req *Request) error {
	if len(req.Key) > MaxKeyLen {
		return fmt.Errorf("%w: key %d bytes", ErrFrameTooLarge, len(req.Key))
	}
	if len(req.Value) > MaxValueLen {
		return fmt.Errorf("%w: value %d bytes", ErrFrameTooLarge, len(req.Value))
	}
	return nil
}

// appendRequestHeader appends the length prefix, fixed header, and key
// — everything up to (but not including) the value bytes. The encoded
// valueLen field covers len(req.Value) whether or not the caller
// appends the value to the same buffer or transmits it as a separate
// scatter-gather vector.
func appendRequestHeader(buf []byte, req *Request) []byte {
	frameLen := reqHeaderLen + len(req.Key) + len(req.Value)
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameLen))
	buf = binary.BigEndian.AppendUint64(buf, req.ID)
	buf = append(buf, byte(req.Op))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Key)))
	buf = append(buf, req.Meta.ChunkIndex, req.Meta.K, req.Meta.M)
	buf = binary.BigEndian.AppendUint32(buf, req.Meta.TotalLen)
	buf = binary.BigEndian.AppendUint64(buf, req.Meta.Stripe)
	buf = binary.BigEndian.AppendUint32(buf, req.TTLSeconds)
	buf = binary.BigEndian.AppendUint64(buf, req.Compare)
	buf = binary.BigEndian.AppendUint64(buf, req.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(req.Value)))
	return append(buf, req.Key...)
}

// AppendRequest serializes req onto buf and returns the extended
// slice. The exact frame size is known up front, so buf is grown once
// to its final capacity instead of reallocating through repeated
// append growth.
func AppendRequest(buf []byte, req *Request) ([]byte, error) {
	if err := checkRequestSize(req); err != nil {
		return nil, err
	}
	buf = slices.Grow(buf, 4+reqHeaderLen+len(req.Key)+len(req.Value))
	buf = appendRequestHeader(buf, req)
	return append(buf, req.Value...), nil
}

// WriteRequest writes one request frame to w.
func WriteRequest(w io.Writer, req *Request) error {
	buf, err := AppendRequest(nil, req)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// parseRequest decodes a request frame body. With copyValue the value
// is copied out of body; otherwise it aliases body (pooled mode).
func parseRequest(body []byte, copyValue bool) (*Request, error) {
	req := &Request{
		ID: binary.BigEndian.Uint64(body[0:8]),
		Op: Op(body[8]),
	}
	keyLen := int(binary.BigEndian.Uint16(body[9:11]))
	req.Meta = ECMeta{
		ChunkIndex: body[11],
		K:          body[12],
		M:          body[13],
		TotalLen:   binary.BigEndian.Uint32(body[14:18]),
		Stripe:     binary.BigEndian.Uint64(body[18:26]),
	}
	req.TTLSeconds = binary.BigEndian.Uint32(body[26:30])
	req.Compare = binary.BigEndian.Uint64(body[30:38])
	req.Epoch = binary.BigEndian.Uint64(body[38:46])
	valueLen := int(binary.BigEndian.Uint32(body[46:50]))
	if !req.Op.Valid() || keyLen > MaxKeyLen || valueLen > MaxValueLen {
		return nil, ErrMalformed
	}
	if len(body) != reqHeaderLen+keyLen+valueLen {
		return nil, fmt.Errorf("%w: frame length mismatch", ErrMalformed)
	}
	req.Key = string(body[reqHeaderLen : reqHeaderLen+keyLen])
	if valueLen > 0 {
		if copyValue {
			req.Value = append([]byte(nil), body[reqHeaderLen+keyLen:]...)
		} else {
			req.Value = body[reqHeaderLen+keyLen:]
		}
	}
	return req, nil
}

// ReadRequest reads one request frame from r. The returned request
// owns its memory (the value is copied out of the frame buffer).
func ReadRequest(r *bufio.Reader) (*Request, error) {
	body, err := readFrame(r, reqHeaderLen)
	if err != nil {
		return nil, err
	}
	return parseRequest(body, true)
}

// ReadRequestPooled reads one request frame into a buffer leased from
// pool; the returned request's Value aliases that buffer. The caller
// must call Request.Release once it is done with the value — typically
// after the store has copied it — to hand the buffer back for the next
// frame. A nil pool falls back to ReadRequest. On error no lease is
// retained.
func ReadRequestPooled(r *bufio.Reader, pool *bufpool.Pool) (*Request, error) {
	if pool == nil {
		return ReadRequest(r)
	}
	body, err := readFramePooled(r, reqHeaderLen, pool)
	if err != nil {
		return nil, err
	}
	req, err := parseRequest(body, false)
	if err != nil {
		pool.Put(body)
		return nil, err
	}
	req.lease, req.pool = body, pool
	return req, nil
}

// appendResponseHeader appends the length prefix and fixed header —
// everything up to (but not including) the value bytes.
func appendResponseHeader(buf []byte, resp *Response) []byte {
	frameLen := respHeaderLen + len(resp.Value)
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameLen))
	buf = binary.BigEndian.AppendUint64(buf, resp.ID)
	buf = append(buf, byte(resp.Status))
	buf = append(buf, resp.Meta.ChunkIndex, resp.Meta.K, resp.Meta.M)
	buf = binary.BigEndian.AppendUint32(buf, resp.Meta.TotalLen)
	buf = binary.BigEndian.AppendUint64(buf, resp.Meta.Stripe)
	buf = binary.BigEndian.AppendUint32(buf, resp.TTLSeconds)
	return binary.BigEndian.AppendUint32(buf, uint32(len(resp.Value)))
}

// AppendResponse serializes resp onto buf and returns the extended
// slice, growing buf once to the exact frame size.
func AppendResponse(buf []byte, resp *Response) ([]byte, error) {
	if len(resp.Value) > MaxValueLen {
		return nil, fmt.Errorf("%w: value %d bytes", ErrFrameTooLarge, len(resp.Value))
	}
	buf = slices.Grow(buf, 4+respHeaderLen+len(resp.Value))
	buf = appendResponseHeader(buf, resp)
	return append(buf, resp.Value...), nil
}

// WriteResponse writes one response frame to w.
func WriteResponse(w io.Writer, resp *Response) error {
	buf, err := AppendResponse(nil, resp)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// parseResponse decodes a response frame body. With copyValue the
// value is copied out of body; otherwise it aliases body (pooled mode).
func parseResponse(body []byte, copyValue bool) (*Response, error) {
	resp := &Response{
		ID:     binary.BigEndian.Uint64(body[0:8]),
		Status: Status(body[8]),
	}
	resp.Meta = ECMeta{
		ChunkIndex: body[9],
		K:          body[10],
		M:          body[11],
		TotalLen:   binary.BigEndian.Uint32(body[12:16]),
		Stripe:     binary.BigEndian.Uint64(body[16:24]),
	}
	resp.TTLSeconds = binary.BigEndian.Uint32(body[24:28])
	valueLen := int(binary.BigEndian.Uint32(body[28:32]))
	if valueLen > MaxValueLen {
		return nil, ErrMalformed
	}
	if len(body) != respHeaderLen+valueLen {
		return nil, fmt.Errorf("%w: frame length mismatch", ErrMalformed)
	}
	if valueLen > 0 {
		if copyValue {
			resp.Value = append([]byte(nil), body[respHeaderLen:]...)
		} else {
			resp.Value = body[respHeaderLen:]
		}
	}
	return resp, nil
}

// ReadResponse reads one response frame from r. The returned response
// owns its memory (the value is copied out of the frame buffer).
func ReadResponse(r *bufio.Reader) (*Response, error) {
	body, err := readFrame(r, respHeaderLen)
	if err != nil {
		return nil, err
	}
	return parseResponse(body, true)
}

// ReadResponsePooled reads one response frame into a buffer leased
// from pool; the returned response's Value aliases that buffer. The
// consumer must call Response.Release once the value has been decoded
// or copied out — on every path, including errors — to hand the buffer
// back. A nil pool falls back to ReadResponse. On error no lease is
// retained.
func ReadResponsePooled(r *bufio.Reader, pool *bufpool.Pool) (*Response, error) {
	if pool == nil {
		return ReadResponse(r)
	}
	body, err := readFramePooled(r, respHeaderLen, pool)
	if err != nil {
		return nil, err
	}
	resp, err := parseResponse(body, false)
	if err != nil {
		pool.Put(body)
		return nil, err
	}
	resp.lease, resp.pool = body, pool
	return resp, nil
}

// readFrame reads the length prefix and frame body, enforcing limits.
func readFrame(r *bufio.Reader, minLen int) ([]byte, error) {
	return readFramePooled(r, minLen, nil)
}

// readFramePooled is readFrame with the body drawn from pool (plain
// allocation when pool is nil). On error the buffer is returned to the
// pool before the call returns.
func readFramePooled(r *bufio.Reader, minLen int, pool *bufpool.Pool) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF on clean close
	}
	frameLen := int(binary.BigEndian.Uint32(lenBuf[:]))
	if frameLen < minLen {
		return nil, fmt.Errorf("%w: frame too short (%d)", ErrMalformed, frameLen)
	}
	if frameLen > MaxValueLen+MaxKeyLen+reqHeaderLen {
		return nil, ErrFrameTooLarge
	}
	var body []byte
	if pool != nil {
		body = pool.GetRaw(frameLen)
	} else {
		body = make([]byte, frameLen)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if pool != nil {
			pool.Put(body)
		}
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// ChunkKey derives the storage key for chunk idx of key. Replication
// reuses it with the replica index.
func ChunkKey(key string, idx int) string {
	return fmt.Sprintf("%s\x00c%d", key, idx)
}
