package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/bufpool"
)

// mustBalance fails the test unless every buffer leased from p has
// been returned — the core lease-lifecycle invariant of the pooled
// wire path.
func mustBalance(t *testing.T, p *bufpool.Pool) {
	t.Helper()
	st := p.Stats()
	if st.Gets != st.Puts {
		t.Fatalf("pool lease imbalance: %d gets vs %d puts", st.Gets, st.Puts)
	}
}

func TestEncodeRequestFrameInlineMatchesAppend(t *testing.T) {
	p := bufpool.New()
	req := &Request{
		ID: 7, Op: OpSet, Key: "k", Value: []byte("small value"),
		TTLSeconds: 3, Meta: ECMeta{K: 3, M: 2, TotalLen: 11},
	}
	want, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EncodeRequestFrame(p, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, val := f.Vectors(); val != nil {
		t.Fatalf("value below threshold must be inlined, got %d-byte vector", len(val))
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("framed bytes differ from AppendRequest")
	}
	f.Release()
	f.Release() // idempotent
	mustBalance(t, p)
}

func TestEncodeRequestFrameVectoredTransfersLease(t *testing.T) {
	p := bufpool.New()
	value := p.GetRaw(FrameInlineThreshold + 1)
	for i := range value {
		value[i] = byte(i)
	}
	req := &Request{ID: 9, Op: OpSetChunk, Key: "big", Value: value, ValuePool: p}
	want, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EncodeRequestFrame(p, req)
	if err != nil {
		t.Fatal(err)
	}
	if req.ValuePool != nil {
		t.Fatal("frame must take ownership of the value lease")
	}
	if _, val := f.Vectors(); len(val) != FrameInlineThreshold+1 {
		t.Fatalf("large value must ride as its own vector, got %d bytes", len(val))
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("framed bytes differ from AppendRequest")
	}
	f.Release()
	mustBalance(t, p)
}

func TestEncodeRequestFrameInlineReleasesValueLease(t *testing.T) {
	p := bufpool.New()
	value := p.GetRaw(100)
	req := &Request{ID: 1, Op: OpSet, Key: "k", Value: value, ValuePool: p}
	f, err := EncodeRequestFrame(p, req)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	mustBalance(t, p) // the inlined value's lease went straight back
}

func TestEncodeRequestFrameErrorReleasesValueLease(t *testing.T) {
	p := bufpool.New()
	value := p.GetRaw(64)
	req := &Request{ID: 1, Op: OpSet, Key: string(make([]byte, MaxKeyLen+1)), Value: value, ValuePool: p}
	if _, err := EncodeRequestFrame(p, req); err == nil {
		t.Fatal("expected oversized-key error")
	}
	mustBalance(t, p)
}

func TestEncodeResponseFrameRoundTrip(t *testing.T) {
	p := bufpool.New()
	for _, n := range []int{0, 10, FrameInlineThreshold, FrameInlineThreshold + 1, 1 << 20} {
		resp := &Response{ID: 3, Status: StatusOK, Value: bytes.Repeat([]byte{0xAB}, n),
			Meta: ECMeta{K: 3, M: 2, TotalLen: uint32(n)}}
		want, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatal(err)
		}
		f, err := EncodeResponseFrame(p, resp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("value len %d: framed bytes differ from AppendResponse", n)
		}
		f.Release()
		got, err := ReadResponsePooled(bufio.NewReader(&buf), p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != resp.Status || got.Meta != resp.Meta || !bytes.Equal(got.Value, resp.Value) {
			t.Fatalf("value len %d: round trip mismatch", n)
		}
		got.Release()
		got.Release() // idempotent
	}
	mustBalance(t, p)
}

func TestReadRequestPooledRoundTrip(t *testing.T) {
	p := bufpool.New()
	req := &Request{
		ID: 11, Op: OpSetChunk, Key: "chunk/0", Value: bytes.Repeat([]byte{7}, 100_000),
		TTLSeconds: 9, Meta: ECMeta{ChunkIndex: 2, K: 3, M: 2, TotalLen: 100_000, Stripe: 42},
	}
	buf, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestPooled(bufio.NewReader(bytes.NewReader(buf)), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Key != req.Key || got.Meta != req.Meta || !bytes.Equal(got.Value, req.Value) {
		t.Fatal("round trip mismatch")
	}
	got.Release()
	mustBalance(t, p)
}

func TestEncodeChunkPayloadPooledMatchesUnpooled(t *testing.T) {
	p := bufpool.New()
	meta := ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 99, Stripe: 1234}
	chunk := bytes.Repeat([]byte{0xCD}, 999)
	want := EncodeChunkPayload(meta, chunk)
	got := EncodeChunkPayloadPooled(p, meta, chunk)
	if !bytes.Equal(want, got) {
		t.Fatal("pooled chunk payload differs")
	}
	p.Put(got)
	mustBalance(t, p)
}

// gateWriter blocks each Write until released, letting tests pile
// frames into the queue behind an in-flight batch.
type gateWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	gate chan struct{}
}

func (w *gateWriter) Write(b []byte) (int, error) {
	if w.gate != nil {
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

func (w *gateWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

func TestFrameQueueWritesAllFramesAndCoalesces(t *testing.T) {
	p := bufpool.New()
	w := &gateWriter{gate: make(chan struct{})}
	q := NewFrameQueue(w, 64, p, nil)

	const frames = 24
	var want bytes.Buffer
	for i := 0; i < frames; i++ {
		// Mix inline and vectored frames so coalescing crosses both.
		size := 64
		if i%5 == 0 {
			size = FrameInlineThreshold + 100
		}
		req := &Request{ID: uint64(i + 1), Op: OpSet, Key: fmt.Sprintf("k%d", i),
			Value: bytes.Repeat([]byte{byte(i)}, size)}
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(enc)
		f, err := EncodeRequestFrame(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	close(w.gate) // release the writer; everything drains
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.bytes(); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("queue output differs: %d bytes vs %d expected", len(got), want.Len())
	}
	batches, written := q.Stats()
	if written != frames {
		t.Fatalf("wrote %d frames, want %d", written, frames)
	}
	if batches >= written {
		t.Fatalf("no coalescing happened: %d batches for %d frames", batches, written)
	}
	mustBalance(t, p)
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("wire down") }

func TestFrameQueueErrorReleasesEverything(t *testing.T) {
	p := bufpool.New()
	errc := make(chan error, 1)
	q := NewFrameQueue(errWriter{}, 4, p, func(err error) {
		select {
		case errc <- err:
		default:
		}
	})
	var enqErr error
	for i := 0; i < 32; i++ {
		f, err := EncodeRequestFrame(p, &Request{ID: uint64(i + 1), Op: OpSet, Key: "k",
			Value: bytes.Repeat([]byte{1}, FrameInlineThreshold*2)})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(f); err != nil {
			enqErr = err // frame already released by Enqueue
		}
	}
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("onError never fired")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if enqErr == nil {
		// Depending on timing every Enqueue may have squeaked in before
		// the first write failed; the post-Close enqueue must not.
		f, err := EncodeRequestFrame(p, &Request{ID: 99, Op: OpSet, Key: "k"})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(f); err == nil {
			t.Fatal("enqueue after close must fail")
		}
	}
	mustBalance(t, p)
}

func TestFrameQueueCloseDrainsQueued(t *testing.T) {
	p := bufpool.New()
	var w gateWriter
	q := NewFrameQueue(&w, 64, p, nil)
	for i := 0; i < 10; i++ {
		f, err := EncodeRequestFrame(p, &Request{ID: uint64(i + 1), Op: OpGet, Key: "k"})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(w.bytes()))
	for i := 0; i < 10; i++ {
		if _, err := ReadRequest(br); err != nil {
			t.Fatalf("frame %d unreadable after close-drain: %v", i, err)
		}
	}
	mustBalance(t, p)
}
