package wire

import (
	"errors"
	"io"
	"net"
	"sync"

	"ecstore/internal/bufpool"
)

// ErrQueueClosed is returned by FrameQueue.Enqueue after Close, or
// after the underlying writer has failed.
var ErrQueueClosed = errors.New("wire: frame queue closed")

// coalesceLimit is the largest vector the batch writer will merge into
// its contiguous scratch buffer. Vectors up to this size are memcpy'd
// together so a batch of small frames goes out as one (or few) write
// vectors; larger vectors (big values) are passed through untouched —
// for those the copy would cost more than the extra iovec.
const coalesceLimit = 8 << 10

// FrameQueue serializes encoded frames onto a connection through a
// dedicated writer goroutine. Callers enqueue fully encoded Frames
// (no encoding happens under any queue lock); the writer drains
// everything queued since its last flush and writes the whole batch as
// one vectored write. With an ARPE-style window of in-flight chunk
// operations this coalesces the K+M frame writes of a Set into a
// handful of syscalls instead of one flush per frame.
//
// Ownership: a successful Enqueue transfers frame ownership to the
// queue — the writer releases each frame's pooled buffers after the
// batch is written (or when the queue shuts down). On Enqueue error
// the frame is released before returning, so callers never release
// frames themselves.
type FrameQueue struct {
	w    io.Writer
	pool *bufpool.Pool

	// onError, if non-nil, is invoked once — on a fresh goroutine, so it
	// may call back into Close — with the first write error; subsequent
	// Enqueues fail with that error.
	onError func(error)

	mu      sync.Mutex
	data    sync.Cond // signaled when queued frames or close arrive
	space   sync.Cond // signaled when the writer drains the queue
	queued  []Frame
	standby []Frame // writer's drained batch, swapped back as next queued backing
	max     int
	closed  bool
	err     error
	done    chan struct{}

	batches, frames uint64 // flush stats (guarded by mu)
}

// NewFrameQueue starts a writer goroutine draining frames onto w.
// maxQueued bounds the number of undrained frames (Enqueue blocks when
// full, providing backpressure); values < 1 default to 64. pool is the
// scratch-buffer source for write coalescing (nil disables coalescing).
// Close must be called to stop the writer.
func NewFrameQueue(w io.Writer, maxQueued int, pool *bufpool.Pool, onError func(error)) *FrameQueue {
	if maxQueued < 1 {
		maxQueued = 64
	}
	q := &FrameQueue{
		w:       w,
		pool:    pool,
		onError: onError,
		max:     maxQueued,
		done:    make(chan struct{}),
	}
	q.data.L = &q.mu
	q.space.L = &q.mu
	go q.run()
	return q
}

// Enqueue hands a frame to the writer, blocking while the queue is
// full. On success the queue owns the frame; on error the frame has
// already been released.
func (q *FrameQueue) Enqueue(f Frame) error {
	q.mu.Lock()
	for !q.closed && q.err == nil && len(q.queued) >= q.max {
		q.space.Wait()
	}
	if q.closed || q.err != nil {
		err := q.err
		q.mu.Unlock()
		f.Release()
		if err != nil {
			return err
		}
		return ErrQueueClosed
	}
	q.queued = append(q.queued, f)
	q.data.Signal()
	q.mu.Unlock()
	return nil
}

// Close stops the writer after it drains frames already queued, then
// waits for it to exit. Safe to call more than once.
func (q *FrameQueue) Close() error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.data.Broadcast()
		q.space.Broadcast()
	}
	q.mu.Unlock()
	<-q.done
	return nil
}

// Stats returns the number of batch flushes and frames written so far;
// frames/batches is the achieved coalescing factor.
func (q *FrameQueue) Stats() (batches, frames uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.batches, q.frames
}

func (q *FrameQueue) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.queued) == 0 && !q.closed && q.err == nil {
			q.data.Wait()
		}
		if q.err != nil || (q.closed && len(q.queued) == 0) {
			// Release anything that slipped in after the error.
			for i := range q.queued {
				q.queued[i].Release()
			}
			q.queued = q.queued[:0]
			q.mu.Unlock()
			return
		}
		// Swap the queued batch out so Enqueue can refill while we
		// write without holding the lock.
		batch := q.queued
		q.queued = q.standby[:0]
		q.standby = batch
		q.space.Broadcast()
		q.mu.Unlock()

		err := q.writeBatch(batch)
		for i := range batch {
			batch[i].Release()
		}

		q.mu.Lock()
		if err == nil {
			q.batches++
			q.frames += uint64(len(batch))
		} else if q.err == nil {
			q.err = err
			q.data.Broadcast()
			q.space.Broadcast()
		}
		q.mu.Unlock()
		if err != nil && q.onError != nil {
			go q.onError(err)
		}
	}
}

// writeBatch writes every frame in batch as a single vectored write,
// coalescing runs of small vectors into a pooled scratch buffer. The
// scratch is sized in a first pass before any bytes are copied, so
// appends can never reallocate it and invalidate aliases already in
// the iovec list.
func (q *FrameQueue) writeBatch(batch []Frame) error {
	if len(batch) == 1 && q.pool == nil {
		_, err := batch[0].WriteTo(q.w)
		return err
	}

	// Pass 1: total bytes of coalescable (small) vectors.
	small := 0
	nvec := 0
	for i := range batch {
		h, v := batch[i].Vectors()
		if len(h) <= coalesceLimit {
			small += len(h)
		} else {
			nvec++
		}
		if len(v) > 0 {
			if len(v) <= coalesceLimit {
				small += len(v)
			} else {
				nvec++
			}
		}
	}

	var scratch []byte
	if small > 0 && q.pool != nil {
		scratch = q.pool.GetRaw(small)[:0]
	}

	// Pass 2: build the iovec list. Consecutive small vectors are
	// appended to scratch; each run becomes one vector aliasing the
	// scratch region it occupies. scratch never grows past its leased
	// capacity, so earlier aliases stay valid.
	bufs := make(net.Buffers, 0, nvec+len(batch))
	runStart := 0
	flushRun := func() {
		if len(scratch) > runStart {
			bufs = append(bufs, scratch[runStart:len(scratch):len(scratch)])
			runStart = len(scratch)
		}
	}
	addVec := func(b []byte) {
		if len(b) == 0 {
			return
		}
		if scratch != nil && len(b) <= coalesceLimit {
			scratch = append(scratch, b...)
			return
		}
		flushRun()
		bufs = append(bufs, b)
	}
	for i := range batch {
		h, v := batch[i].Vectors()
		addVec(h)
		addVec(v)
	}
	flushRun()

	var err error
	if len(bufs) == 1 {
		_, err = q.w.Write(bufs[0])
	} else if len(bufs) > 1 {
		_, err = bufs.WriteTo(q.w)
	}
	if scratch != nil {
		q.pool.Put(scratch)
	}
	return err
}
