package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestReadRequestNeverPanicsOnGarbage feeds random byte streams to the
// frame readers: they must return errors, never panic, and never
// allocate absurd buffers.
func TestReadRequestNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		r := bufio.NewReader(bytes.NewReader(buf))
		_, _ = ReadRequest(r)
		r = bufio.NewReader(bytes.NewReader(buf))
		_, _ = ReadResponse(r)
	}
}

// TestReadRequestMutatedFrames flips bytes in valid frames: decoding
// must fail cleanly or produce a structurally valid request.
func TestReadRequestMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, err := AppendRequest(nil, &Request{
		ID: 7, Op: OpSetChunk, Key: "user:1", Value: []byte("some value bytes"),
		Meta: ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), base...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(mut)))
		if err != nil {
			continue
		}
		// If it decoded, the invariants must hold.
		if !req.Op.Valid() {
			t.Fatalf("trial %d: invalid op decoded: %v", trial, req.Op)
		}
		if len(req.Key) > MaxKeyLen || len(req.Value) > MaxValueLen {
			t.Fatalf("trial %d: limits violated", trial)
		}
	}
}

// TestHugeLengthPrefixDoesNotAllocate ensures a hostile length prefix
// is rejected before any body allocation.
func TestHugeLengthPrefixDoesNotAllocate(t *testing.T) {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.BigEndian, uint32(0xFFFFFFFF))
	buf.Write(make([]byte, 16))
	allocs := testing.AllocsPerRun(10, func() {
		r := bufio.NewReader(bytes.NewReader(buf.Bytes()))
		_, _ = ReadRequest(r)
	})
	// A bufio.Reader and small header scratch are fine; a 4 GB body
	// buffer is not. Allocations must stay trivial.
	if allocs > 10 {
		t.Fatalf("%v allocations on hostile frame", allocs)
	}
}
