package wire

import (
	"bufio"
	"bytes"
	"testing"

	"ecstore/internal/bufpool"
)

// pooledRange reports whether a frame of n bytes stays within the
// pool's size classes; larger leases fall back to plain allocation and
// are deliberately never retained by Put, so the get/put balance
// assertion only holds below the largest class.
func pooledRange(n int) bool { return n <= 4<<20 }

// FuzzReadRequest drives the request frame parser with arbitrary
// bytes: it must never panic and any frame that decodes must re-encode
// to a frame that decodes to the same request.
func FuzzReadRequest(f *testing.F) {
	seed, err := AppendRequest(nil, &Request{
		ID: 1, Op: OpSetChunk, Key: "key", Value: []byte("value"),
		TTLSeconds: 60, Compare: 7, Meta: ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 5},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Round-trip invariant for accepted frames.
		out, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		again, err := ReadRequest(bufio.NewReader(bytes.NewReader(out)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != req.Op || again.Key != req.Key || again.TTLSeconds != req.TTLSeconds ||
			again.Compare != req.Compare || again.Meta != req.Meta || !bytes.Equal(again.Value, req.Value) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, again)
		}

		// The pooled/vectored path must produce byte-identical frames
		// and return every lease it takes.
		pool := bufpool.New()
		frame, err := EncodeRequestFrame(pool, req)
		if err != nil {
			t.Fatalf("pooled encode of accepted request failed: %v", err)
		}
		var vbuf bytes.Buffer
		if _, err := frame.WriteTo(&vbuf); err != nil {
			t.Fatalf("frame write failed: %v", err)
		}
		frame.Release()
		if !bytes.Equal(vbuf.Bytes(), out) {
			t.Fatalf("vectored frame differs from AppendRequest output")
		}
		pooled, err := ReadRequestPooled(bufio.NewReader(&vbuf), pool)
		if err != nil {
			t.Fatalf("pooled re-decode failed: %v", err)
		}
		if pooled.Op != req.Op || pooled.Key != req.Key || pooled.Meta != req.Meta ||
			pooled.Compare != req.Compare || !bytes.Equal(pooled.Value, req.Value) {
			t.Fatalf("pooled round trip mismatch")
		}
		pooled.Release()
		if st := pool.Stats(); pooledRange(len(out)) && st.Gets != st.Puts {
			t.Fatalf("pool lease imbalance: %d gets vs %d puts", st.Gets, st.Puts)
		}
	})
}

// FuzzReadResponse is the response-side twin.
func FuzzReadResponse(f *testing.F) {
	seed, err := AppendResponse(nil, &Response{
		ID: 2, Status: StatusOK, Value: []byte("v"), TTLSeconds: 30,
		Meta: ECMeta{ChunkIndex: 0, K: 3, M: 2, TotalLen: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		out, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadResponse(bufio.NewReader(bytes.NewReader(out)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Status != resp.Status || again.Meta != resp.Meta ||
			again.TTLSeconds != resp.TTLSeconds || !bytes.Equal(again.Value, resp.Value) {
			t.Fatalf("round trip mismatch")
		}

		pool := bufpool.New()
		frame, err := EncodeResponseFrame(pool, resp)
		if err != nil {
			t.Fatalf("pooled encode failed: %v", err)
		}
		var vbuf bytes.Buffer
		if _, err := frame.WriteTo(&vbuf); err != nil {
			t.Fatalf("frame write failed: %v", err)
		}
		frame.Release()
		if !bytes.Equal(vbuf.Bytes(), out) {
			t.Fatalf("vectored frame differs from AppendResponse output")
		}
		pooled, err := ReadResponsePooled(bufio.NewReader(&vbuf), pool)
		if err != nil {
			t.Fatalf("pooled re-decode failed: %v", err)
		}
		if pooled.Status != resp.Status || pooled.Meta != resp.Meta ||
			pooled.TTLSeconds != resp.TTLSeconds || !bytes.Equal(pooled.Value, resp.Value) {
			t.Fatalf("pooled round trip mismatch")
		}
		pooled.Release()
		if st := pool.Stats(); pooledRange(len(out)) && st.Gets != st.Puts {
			t.Fatalf("pool lease imbalance: %d gets vs %d puts", st.Gets, st.Puts)
		}
	})
}
