package wire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Scan limits. A page is bounded so one response frame can never
// approach MaxValueLen even with every key at MaxKeyLen.
const (
	// DefaultScanLimit is the page size used when a request carries no
	// explicit limit.
	DefaultScanLimit = 256
	// MaxScanLimit caps the per-page key count a server will honour.
	MaxScanLimit = 4096
)

// ScanCursor is the resumption point of a paged keyspace scan. It is
// opaque to clients (carried as bytes in the request value) but has a
// stable encoding so any server replica can continue another's page
// sequence: the shard index being walked and the last key returned
// from it. The zero cursor starts a scan from the beginning.
type ScanCursor struct {
	// Shard is the store shard currently being iterated.
	Shard uint32
	// After is the last key already returned from that shard; the next
	// page resumes strictly after it in lexicographic order.
	After string
}

// EncodeScanCursor serializes c for the wire.
func EncodeScanCursor(c ScanCursor) []byte {
	out := make([]byte, 0, 6+len(c.After))
	out = binary.BigEndian.AppendUint32(out, c.Shard)
	out = binary.BigEndian.AppendUint16(out, uint16(len(c.After)))
	return append(out, c.After...)
}

// DecodeScanCursor parses a cursor produced by EncodeScanCursor. An
// empty payload is the zero cursor (start of the keyspace).
func DecodeScanCursor(b []byte) (ScanCursor, error) {
	if len(b) == 0 {
		return ScanCursor{}, nil
	}
	if len(b) < 6 {
		return ScanCursor{}, fmt.Errorf("%w: scan cursor too short (%d bytes)", ErrMalformed, len(b))
	}
	c := ScanCursor{Shard: binary.BigEndian.Uint32(b[0:4])}
	afterLen := int(binary.BigEndian.Uint16(b[4:6]))
	if afterLen > MaxKeyLen || len(b) != 6+afterLen {
		return ScanCursor{}, fmt.Errorf("%w: scan cursor length mismatch", ErrMalformed)
	}
	c.After = string(b[6:])
	return c, nil
}

// ScanPage is one page of scan results: the keys found plus the cursor
// for the next page (empty when the keyspace is exhausted).
type ScanPage struct {
	// Keys are the stored keys of this page, in scan order. They are
	// raw storage keys: erasure-coded values appear as their derived
	// chunk keys (see LogicalKey).
	Keys []string
	// Next is the encoded cursor of the next page; empty means the
	// scan is complete.
	Next []byte
}

// EncodeScanPage serializes p into a response value.
func EncodeScanPage(p ScanPage) []byte {
	size := 2 + len(p.Next) + 4
	for _, k := range p.Keys {
		size += 2 + len(k)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Next)))
	out = append(out, p.Next...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Keys)))
	for _, k := range p.Keys {
		out = binary.BigEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
	}
	return out
}

// DecodeScanPage parses a response value produced by EncodeScanPage.
func DecodeScanPage(b []byte) (ScanPage, error) {
	var p ScanPage
	if len(b) < 6 {
		return p, fmt.Errorf("%w: scan page too short (%d bytes)", ErrMalformed, len(b))
	}
	nextLen := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if nextLen > len(b) {
		return p, fmt.Errorf("%w: scan page cursor overruns frame", ErrMalformed)
	}
	if nextLen > 0 {
		p.Next = append([]byte(nil), b[:nextLen]...)
	}
	b = b[nextLen:]
	if len(b) < 4 {
		return p, fmt.Errorf("%w: scan page truncated", ErrMalformed)
	}
	count := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if count > MaxScanLimit {
		return p, fmt.Errorf("%w: scan page of %d keys exceeds limit", ErrMalformed, count)
	}
	p.Keys = make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return p, fmt.Errorf("%w: scan page truncated at key %d", ErrMalformed, i)
		}
		kl := int(binary.BigEndian.Uint16(b[0:2]))
		b = b[2:]
		if kl > MaxKeyLen || kl > len(b) {
			return p, fmt.Errorf("%w: scan page key %d overruns frame", ErrMalformed, i)
		}
		p.Keys = append(p.Keys, string(b[:kl]))
		b = b[kl:]
	}
	if len(b) != 0 {
		return p, fmt.Errorf("%w: %d trailing bytes after scan page", ErrMalformed, len(b))
	}
	return p, nil
}

// chunkKeySep is the separator ChunkKey inserts between the logical
// key and the chunk index ("\x00c<idx>"). The NUL byte cannot appear
// in client keys written through the memcached-style front ends, so
// the mapping is unambiguous.
const chunkKeySep = "\x00c"

// LogicalKey maps a stored key back to the logical key a client wrote:
// a derived chunk key ("key\x00c3") yields its base key and true, any
// other key is returned unchanged with false. Scan consumers use it to
// fold per-chunk and per-replica storage keys into one logical
// keyspace.
func LogicalKey(stored string) (key string, isChunk bool) {
	i := strings.LastIndex(stored, chunkKeySep)
	if i < 0 {
		return stored, false
	}
	idx := stored[i+len(chunkKeySep):]
	if len(idx) == 0 {
		return stored, false
	}
	for _, r := range idx {
		if r < '0' || r > '9' {
			return stored, false
		}
	}
	return stored[:i], true
}
