package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestChunkPayloadRoundTrip(t *testing.T) {
	meta := ECMeta{ChunkIndex: 3, K: 3, M: 2, TotalLen: 1_000_000}
	chunk := []byte("chunk-bytes")
	payload := EncodeChunkPayload(meta, chunk)
	gotMeta, gotChunk, err := DecodeChunkPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v", gotMeta)
	}
	if !bytes.Equal(gotChunk, chunk) {
		t.Fatalf("chunk %q", gotChunk)
	}
}

func TestChunkPayloadEmptyChunk(t *testing.T) {
	payload := EncodeChunkPayload(ECMeta{ChunkIndex: 0, K: 1, M: 0, TotalLen: 0}, nil)
	meta, chunk, err := DecodeChunkPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk) != 0 || meta.K != 1 {
		t.Fatalf("meta %+v chunk %v", meta, chunk)
	}
}

func TestChunkPayloadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("not a chunk payload at all"),
		EncodeChunkPayload(ECMeta{ChunkIndex: 9, K: 3, M: 2, TotalLen: 10}, []byte("x")), // idx >= k+m
		EncodeChunkPayload(ECMeta{ChunkIndex: 0, K: 0, M: 2, TotalLen: 10}, []byte("x")), // k == 0
	}
	for i, payload := range cases {
		if _, _, err := DecodeChunkPayload(payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestChunkPayloadDetectsBitRot(t *testing.T) {
	payload := EncodeChunkPayload(ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: 100}, []byte("chunk-data-here"))
	// Flip one bit in the chunk body.
	payload[len(payload)-3] ^= 0x01
	if _, _, err := DecodeChunkPayload(payload); !errors.Is(err, ErrChunkCorrupt) {
		t.Fatalf("got %v, want ErrChunkCorrupt", err)
	}
}

func TestChunkPayloadQuick(t *testing.T) {
	f := func(chunk []byte, idx, k, m uint8, total uint32) bool {
		if k == 0 {
			k = 1
		}
		if int(k)+int(m) > 255 {
			m = 0
		}
		idx = idx % (k + m) // keep metadata consistent
		meta := ECMeta{ChunkIndex: idx, K: k, M: m, TotalLen: total}
		gotMeta, gotChunk, err := DecodeChunkPayload(EncodeChunkPayload(meta, chunk))
		return err == nil && gotMeta == meta && bytes.Equal(gotChunk, chunk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
