package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"

	"ecstore/internal/bufpool"
)

// stripeCounter disambiguates stripe IDs minted in the same clock
// tick.
var stripeCounter atomic.Uint64

// NewStripeID mints a stripe identifier for one logical write:
// time-ordered at microsecond granularity (so later writes usually
// carry higher IDs and win last-write-wins ties) with a counter in the
// low bits for uniqueness under concurrency.
func NewStripeID() uint64 {
	return (uint64(time.Now().UnixNano()) << 10) | (stripeCounter.Add(1) & 0x3FF)
}

// chunkMagic marks a self-describing chunk payload.
const chunkMagic = 0xEC

// chunkHeaderLen is the length of the chunk payload header:
// magic, index, K, M, totalLen(4), stripe(8), crc32(4).
const chunkHeaderLen = 20

// ErrChunkCorrupt is returned by DecodeChunkPayload when the stored
// CRC does not match the chunk bytes — silent corruption that the
// erasure code can then repair from parity.
var ErrChunkCorrupt = fmt.Errorf("%w: chunk CRC mismatch", ErrMalformed)

// EncodeChunkPayload prefixes chunk with a self-describing header so
// any server or recovering client can interpret a stored chunk in
// isolation: magic, chunk index, K, M, the original value length, the
// stripe ID of the write that produced it, and a CRC32 of the chunk
// bytes for end-to-end corruption detection.
func EncodeChunkPayload(meta ECMeta, chunk []byte) []byte {
	return encodeChunkPayload(make([]byte, chunkHeaderLen+len(chunk)), meta, chunk)
}

// EncodeChunkPayloadPooled is EncodeChunkPayload into a buffer leased
// from pool. The caller owns the returned buffer and hands it back —
// typically by setting Request.ValuePool so the wire layer releases it
// once the frame is written. A nil pool falls back to plain allocation.
func EncodeChunkPayloadPooled(pool *bufpool.Pool, meta ECMeta, chunk []byte) []byte {
	if pool == nil {
		return EncodeChunkPayload(meta, chunk)
	}
	return encodeChunkPayload(pool.GetRaw(chunkHeaderLen+len(chunk)), meta, chunk)
}

func encodeChunkPayload(out []byte, meta ECMeta, chunk []byte) []byte {
	out[0] = chunkMagic
	out[1] = meta.ChunkIndex
	out[2] = meta.K
	out[3] = meta.M
	binary.BigEndian.PutUint32(out[4:8], meta.TotalLen)
	binary.BigEndian.PutUint64(out[8:16], meta.Stripe)
	binary.BigEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(chunk))
	copy(out[chunkHeaderLen:], chunk)
	return out
}

// DecodeChunkPayload splits a stored chunk payload into its metadata
// and chunk bytes, verifying the CRC. The returned chunk aliases
// payload.
func DecodeChunkPayload(payload []byte) (ECMeta, []byte, error) {
	if len(payload) < chunkHeaderLen || payload[0] != chunkMagic {
		return ECMeta{}, nil, fmt.Errorf("%w: not a chunk payload", ErrMalformed)
	}
	meta := ECMeta{
		ChunkIndex: payload[1],
		K:          payload[2],
		M:          payload[3],
		TotalLen:   binary.BigEndian.Uint32(payload[4:8]),
		Stripe:     binary.BigEndian.Uint64(payload[8:16]),
	}
	if meta.K == 0 || int(meta.ChunkIndex) >= int(meta.K)+int(meta.M) {
		return ECMeta{}, nil, fmt.Errorf("%w: inconsistent chunk metadata %+v", ErrMalformed, meta)
	}
	chunk := payload[chunkHeaderLen:]
	if crc32.ChecksumIEEE(chunk) != binary.BigEndian.Uint32(payload[16:20]) {
		return ECMeta{}, nil, ErrChunkCorrupt
	}
	return meta, chunk, nil
}

// ChunkCollector groups fetched chunks by stripe so decoding never
// mixes chunks from different writes of the same key. With concurrent
// writers, a key's chunk set can transiently hold a blend of stripes;
// the collector selects one complete (>= K chunks) stripe — preferring
// the most complete group, then the highest stripe ID (approximate
// last-write-wins).
type ChunkCollector struct {
	k, n   int
	groups map[uint64]*stripeGroup
}

type stripeGroup struct {
	stripe   uint64
	totalLen uint32
	chunks   [][]byte
	count    int
}

// NewChunkCollector returns a collector for an RS stripe of k data
// chunks out of n total.
func NewChunkCollector(k, n int) *ChunkCollector {
	return &ChunkCollector{k: k, n: n, groups: make(map[uint64]*stripeGroup)}
}

// Add records a fetched chunk. Chunks with an index outside [0, n) are
// ignored.
func (c *ChunkCollector) Add(meta ECMeta, chunk []byte) {
	idx := int(meta.ChunkIndex)
	if idx < 0 || idx >= c.n {
		return
	}
	g, ok := c.groups[meta.Stripe]
	if !ok {
		g = &stripeGroup{stripe: meta.Stripe, totalLen: meta.TotalLen, chunks: make([][]byte, c.n)}
		c.groups[meta.Stripe] = g
	}
	if g.chunks[idx] == nil {
		g.chunks[idx] = chunk
		g.count++
	}
}

// Decodable reports whether some stripe already has >= K chunks.
func (c *ChunkCollector) Decodable() bool {
	for _, g := range c.groups {
		if g.count >= c.k {
			return true
		}
	}
	return false
}

// Best returns the chunks of the winning stripe (most chunks, ties to
// the highest stripe ID) together with its metadata, and false when no
// stripe has at least K chunks. The returned slice has length n with
// nil entries for missing chunks, ready for Reconstruct.
func (c *ChunkCollector) Best() (stripe uint64, totalLen uint32, chunks [][]byte, ok bool) {
	var best *stripeGroup
	for _, g := range c.groups {
		if g.count < c.k {
			continue
		}
		if best == nil || g.count > best.count || (g.count == best.count && g.stripe > best.stripe) {
			best = g
		}
	}
	if best == nil {
		return 0, 0, nil, false
	}
	return best.stripe, best.totalLen, best.chunks, true
}

// Seen returns the number of chunks accepted across all stripes.
func (c *ChunkCollector) Seen() int {
	total := 0
	for _, g := range c.groups {
		total += g.count
	}
	return total
}
