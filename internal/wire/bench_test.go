package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"testing"

	"ecstore/internal/bufpool"
)

var benchSizes = []int{1 << 10, 64 << 10, 1 << 20}

func benchRequest(size int) *Request {
	return &Request{
		ID: 1, Op: OpSetChunk, Key: "bench/key/0",
		Value: bytes.Repeat([]byte{0xA5}, size),
		Meta:  ECMeta{ChunkIndex: 1, K: 3, M: 2, TotalLen: uint32(size)},
	}
}

func BenchmarkAppendRequest(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			req := benchRequest(size)
			var buf []byte
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendRequest(buf[:0], req)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeRequestFrame(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			pool := bufpool.New()
			req := benchRequest(size)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				f, err := EncodeRequestFrame(pool, req)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.WriteTo(io.Discard); err != nil {
					b.Fatal(err)
				}
				f.Release()
			}
		})
	}
}

func BenchmarkReadResponse(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			enc, err := AppendResponse(nil, &Response{
				ID: 1, Status: StatusOK, Value: bytes.Repeat([]byte{1}, size),
			})
			if err != nil {
				b.Fatal(err)
			}
			r := bytes.NewReader(enc)
			br := bufio.NewReaderSize(r, 64<<10)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				r.Reset(enc)
				br.Reset(r)
				if _, err := ReadResponse(br); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadResponsePooled(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			enc, err := AppendResponse(nil, &Response{
				ID: 1, Status: StatusOK, Value: bytes.Repeat([]byte{1}, size),
			})
			if err != nil {
				b.Fatal(err)
			}
			pool := bufpool.New()
			r := bytes.NewReader(enc)
			br := bufio.NewReaderSize(r, 64<<10)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				r.Reset(enc)
				br.Reset(r)
				resp, err := ReadResponsePooled(br, pool)
				if err != nil {
					b.Fatal(err)
				}
				resp.Release()
			}
		})
	}
}
